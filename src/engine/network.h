// The simulated fabric: epoch-driven execution of control plane, data
// plane, and statistics. Two implementations share this interface — the
// NegotiaToR fabric (two-phase epochs, §3.3) defined here and the
// traffic-oblivious rotor fabric (Sirius-style baseline) in
// oblivious/oblivious_scheduler.h.
#pragma once

#include <memory>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "core/control_channel.h"
#include "core/data_channel.h"
#include "core/demand_view.h"
#include "core/epoch.h"
#include "core/fault_detector.h"
#include "core/matching_validator.h"
#include "core/negotiator_scheduler.h"
#include "engine/conservation_auditor.h"
#include "engine/slot_shard_executor.h"
#include "sim/simulation.h"
#include "stats/fct_recorder.h"
#include "stats/goodput_meter.h"
#include "topo/link_state.h"
#include "topo/predefined_schedule.h"
#include "topo/topology.h"
#include "tor/host_plane.h"
#include "tor/host_transport.h"
#include "tor/relay_queue.h"
#include "tor/tor_switch.h"
#include "workload/flow.h"

namespace negotiator {

class ResilienceRecorder;  // stats/resilience_recorder.h

/// Tracks per-flow delivery progress and closes FCT samples.
class FlowTable {
 public:
  /// Registers a flow, returning its dense internal index.
  int add(const Flow& flow);
  const Flow& flow(int index) const;
  /// Credits `bytes` arriving at the destination at `arrival`; records the
  /// FCT sample when the flow completes.
  void credit(int index, Bytes bytes, Nanos arrival, FctRecorder& fct);
  /// Credits a slot's coalesced delivery span in record order — identical
  /// per-record arithmetic to n credit() calls (a flow may appear several
  /// times in one span), but flows completed by the span land in `fct` as
  /// one bulk append instead of one round trip per packet.
  void credit_span(const DeliveryRecord* records, std::size_t n,
                   Nanos arrival, FctRecorder& fct);
  std::size_t size() const { return states_.size(); }
  bool done(int index) const;
  /// Total bytes credited across every flow (conservation ledger).
  Bytes total_delivered() const { return total_delivered_; }

 private:
  struct State {
    Flow flow;
    Bytes delivered{0};
    bool done{false};
  };
  std::vector<State> states_;
  std::vector<FctSample> completed_scratch_;  // per-span staging
  Bytes total_delivered_{0};
};

class FabricSim {
 public:
  virtual ~FabricSim() = default;

  /// Registers a flow arriving at `flow.arrival` (>= now).
  virtual void add_flow(const Flow& flow) = 0;
  void add_flows(const std::vector<Flow>& flows) {
    for (const Flow& f : flows) add_flow(f);
  }

  /// Advances simulated time to `t` (whole epochs/slots are processed).
  virtual void run_until(Nanos t) = 0;
  virtual Nanos now() const = 0;

  virtual FctRecorder& fct() = 0;
  virtual GoodputMeter& goodput() = 0;
  virtual LinkState& links() = 0;
  virtual const NetworkConfig& config() const = 0;

  /// Bytes still queued anywhere in the fabric.
  virtual Bytes total_backlog() const = 0;

  /// Logical (per-chunk) events executed by the simulation clock so far
  /// (perf accounting for bench_perf_engine; representation-independent,
  /// so it survives event-batching refactors).
  virtual std::uint64_t events_executed() const = 0;

  /// Physical queue pops behind events_executed(): one batched chunk
  /// train counts once here but per chunk above, so executed/dispatched
  /// is the data plane's mean batching factor.
  virtual std::uint64_t events_dispatched() const {
    return events_executed();
  }

  /// Final-destination packet deliveries that rode a coalesced per-slot
  /// delivery span so far (second-hop relay + direct data).
  virtual std::uint64_t deliveries() const { return 0; }

  /// Coalesced delivery walks flushed so far (at most one per slot);
  /// deliveries() / delivery_dispatches() is the delivery-side batching
  /// factor — the second-hop mirror of events/dispatches on the enqueue
  /// side.
  virtual std::uint64_t delivery_dispatches() const { return 0; }

  /// Effective intra-run worker-thread count (engine/slot_shard_executor.h)
  /// this fabric runs with — 1 when the shard executor is off, so BENCH
  /// rows and chaos JSON can self-describe their execution mode. Output is
  /// bit-identical across values by contract; this only reports how it was
  /// computed.
  virtual int sim_threads() const { return 1; }

  /// Slots executed through the sharded plan/commit path so far (0 when
  /// sim_threads() == 1, and for slots that took a serial fallback — lossy
  /// channels, unhealthy links). Lets tests assert the parallel path
  /// actually engaged rather than silently falling back everywhere.
  virtual std::uint64_t sharded_slots() const { return 0; }

  /// Per-epoch accepts/grants ratio (Fig. 14); empty for the oblivious
  /// fabric, which has no matching step.
  virtual std::vector<double> match_ratio_series() const { return {}; }

  /// Schedules a link failure (fail=true) or repair at absolute time
  /// `when`.
  virtual void schedule_link_event(Nanos when, TorId tor, PortId port,
                                   LinkDirection dir, bool fail) = 0;

  /// Schedules a control-plane brownout window [start, end) with an
  /// absolute message-drop floor (engine/fault_scenario.h,
  /// ControlBrownoutSpec). Default no-op: fabrics without a lossy control
  /// channel — the oblivious baseline, or a negotiator fabric with
  /// control_fault disabled — tolerate brownout scenarios silently.
  virtual void schedule_control_brownout(Nanos /*start*/, Nanos /*end*/,
                                         double /*drop_floor*/) {}

  /// Schedules a data-plane loss window [start, end) with an absolute
  /// chunk-drop floor (engine/fault_scenario.h, DataLossSpec). Default
  /// no-op: a fabric whose data channel is disabled tolerates data-loss
  /// scenarios silently — same contract as brownouts above.
  virtual void schedule_data_loss(Nanos /*start*/, Nanos /*end*/,
                                  double /*drop_floor*/) {}

  /// Ports currently excluded by the fault-detection plane (counted per
  /// direction; 0 for fabrics without detection, e.g. the oblivious
  /// baseline, and for an idle fault plane).
  virtual int excluded_ports() const { return 0; }

  /// Attaches an optional resilience-metrics sink (see
  /// stats/resilience_recorder.h). The recorder must outlive the fabric
  /// or be detached with set_resilience(nullptr). Null — the default —
  /// keeps every hot path byte-identical to a recorder-free build.
  /// Virtual so fabrics can propagate the sink to sub-components (the
  /// negotiator fabric forwards it to its lossy control channel).
  virtual void set_resilience(ResilienceRecorder* recorder) {
    resilience_ = recorder;
  }
  ResilienceRecorder* resilience() const { return resilience_; }

 protected:
  ResilienceRecorder* resilience_{nullptr};
};

/// NegotiaToR fabric: predefined + scheduled phases per epoch.
class NegotiatorFabric final : public FabricSim,
                               public DemandView,
                               private EventSink {
 public:
  /// `stats_window_ns` > 0 enables per-ToR bandwidth time series.
  explicit NegotiatorFabric(const NetworkConfig& config,
                            Nanos stats_window_ns = 0);

  void add_flow(const Flow& flow) override;
  void run_until(Nanos t) override;
  Nanos now() const override { return sim_.now(); }
  FctRecorder& fct() override { return fct_; }
  GoodputMeter& goodput() override { return goodput_; }
  LinkState& links() override { return links_; }
  const NetworkConfig& config() const override { return config_; }
  Bytes total_backlog() const override;
  std::uint64_t events_executed() const override {
    return sim_.events().executed();
  }
  std::uint64_t events_dispatched() const override {
    return sim_.events().dispatched();
  }
  std::vector<double> match_ratio_series() const override {
    return ratio_series_;
  }
  std::uint64_t deliveries() const override { return deliveries_; }
  std::uint64_t delivery_dispatches() const override {
    return delivery_dispatches_;
  }
  int sim_threads() const override {
    return shard_exec_ ? shard_exec_->threads() : 1;
  }
  std::uint64_t sharded_slots() const override { return sharded_slots_; }
  void schedule_link_event(Nanos when, TorId tor, PortId port,
                           LinkDirection dir, bool fail) override;
  void schedule_control_brownout(Nanos start, Nanos end,
                                 double drop_floor) override;
  void schedule_data_loss(Nanos start, Nanos end,
                          double drop_floor) override;
  void set_resilience(ResilienceRecorder* recorder) override;
  int excluded_ports() const override { return faults_.excluded_count(); }

  // DemandView:
  Bytes pending_bytes(TorId src, TorId dst) const override;
  Bytes elephant_bytes(TorId src, TorId dst) const override;
  Nanos weighted_hol_delay(TorId src, TorId dst, Nanos now,
                           double alpha) const override;
  Nanos oldest_hol_enqueue(TorId src, TorId dst) const override;
  Bytes cumulative_arrived(TorId src, TorId dst) const override;
  Bytes relay_pending(TorId tor, TorId final_dst) const override;
  Bytes relay_queue_total(TorId tor) const override;
  const ActiveSet& relay_active_destinations(TorId tor) const override;
  const ActiveSet& relay_active_sources() const override;
  const ActiveSet& active_destinations(TorId src) const override;
  const ActiveSet& active_sources() const override;
  bool rx_paused(TorId tor) const override;

  /// §3.6.5 host plane, when enabled in the config (else nullptr).
  HostPlane* host_plane() { return host_plane_.get(); }

  const EpochTiming& timing() const { return timing_; }
  std::int64_t current_epoch() const { return epoch_; }

  /// Scheduled-phase utilization counters (diagnostics / ablations):
  /// matches established, match-slots offered, match-slots that carried a
  /// packet, piggyback packets sent.
  std::int64_t total_matches() const { return total_matches_; }
  std::int64_t match_slots_offered() const { return match_slots_offered_; }
  std::int64_t match_slots_used() const { return match_slots_used_; }
  std::int64_t piggyback_packets() const { return piggyback_packets_; }

  /// Lossy control channel (null when control_fault is disabled).
  const ControlChannel* control_channel() const { return control_.get(); }
  /// Lossy data channel (null when data_fault is disabled).
  const DataChannel* data_channel() const { return data_.get(); }
  /// End-host ARQ transport (null unless data_fault.enabled && .arq).
  const HostTransport* host_transport() const { return transport_.get(); }
  /// Byte-conservation auditor (null unless armed; see
  /// engine/conservation_auditor.h).
  const ConservationAuditor* conservation_auditor() const {
    return auditor_.get();
  }
  /// Scheduled slots in which the oblivious fallback delivered data, and
  /// the bytes it moved (0 unless control_fault.fallback).
  std::int64_t degraded_slots() const { return degraded_slots_; }
  Bytes fallback_bytes() const { return fallback_bytes_; }

 private:
  // EventSink: typed events scheduled on the simulation clock.
  void on_flow_arrival(const FlowArrivalEvent& e, Nanos now) override;
  void on_link_toggle(const LinkToggleEvent& e, Nanos now) override;
  void on_relay_handoff(const RelayHandoffEvent& e, Nanos now) override;
  void on_relay_train(const RelayTrainEvent& e, const RelayTrainChunk* chunks,
                      Nanos now) override;
  void on_transport_timer(const TransportTimerEvent& e, Nanos now) override;

  void run_epoch();
  void run_predefined_phase();
  void run_scheduled_phase();

  /// Graceful degradation under control-plane loss (config-gated by
  /// control_fault.fallback): sources whose negotiation yielded no match
  /// this epoch spread one payload per free tx port per scheduled slot
  /// using the predefined (rotor) round-robin rule — direct hits only, on
  /// port pairs not booked by any real match and with both links up. The
  /// global scheduled-slot counter cycles the rule so an unmatched source
  /// reaches every destination over consecutive slots.
  void run_fallback_slot();
  /// Epoch setup for the fallback: books matched tx/rx ports and snapshots
  /// the unmatched-but-active source list (ascending, deterministic).
  void prepare_fallback_epoch();

  /// Parks one final-destination delivery on the current slot's span. The
  /// dequeue already happened (queue state must stay live for same-slot
  /// reads); the flow credit / FCT / goodput / host-plane effects ride the
  /// span and land in flush_deliveries in staged order.
  void stage_delivery(int flow_index, TorId dst, Bytes bytes,
                      std::uint32_t seq = 0) {
    delivery_build_.push_back(
        DeliveryRecord{static_cast<FlowId>(flow_index), dst, bytes, seq});
  }
  /// Transmits one fresh first-hop/direct packet through the lossy data
  /// plane: stamps the ARQ seq (when the transport is on), draws the
  /// channel fate, and stages the delivery when the chunk survives.
  /// Without a data channel this is exactly stage_delivery. `src` is the
  /// transmitting ToR (the ARQ unit's retransmit origin).
  void transmit_direct(int flow_index, TorId src, TorId dst, Bytes bytes,
                       Nanos now);
  /// One retransmission attempt for pair (src, dst), if the transport has
  /// work queued there; returns true when a slot was consumed.
  bool try_retransmit(TorId src, TorId dst, Nanos now);
  /// Lands the staged span as one coalesced walk: credit_span (bulk FCT
  /// completion), record_delivery_span (per-destination deltas), and the
  /// host plane's per-record drain, all at the slot's shared `arrival`.
  void flush_deliveries(Nanos arrival);

  /// Maintains active_sources_ / relay_active_ after a queue mutation at
  /// `tor` (dirty-set invariant: the fabric marks on fill, clears on
  /// drain; schedulers only read).
  void sync_source_activity(TorId tor) {
    if (tors_[static_cast<std::size_t>(tor)].active_destinations().empty()) {
      active_sources_.erase(tor);
    } else {
      active_sources_.insert(tor);
    }
  }
  void sync_relay_activity(TorId tor) {
    if (relay_[static_cast<std::size_t>(tor)].total_bytes() > 0) {
      relay_active_.insert(tor);
    } else {
      relay_active_.erase(tor);
    }
  }

  NetworkConfig config_;
  std::unique_ptr<FlatTopology> topo_;
  PredefinedSchedule schedule_;
  EpochTiming timing_;
  Simulation sim_;
  std::vector<TorSwitch> tors_;
  std::vector<RelayQueueSet> relay_;  // selective-relay variant only
  bool relay_enabled_;
  FlowTable flow_table_;
  FctRecorder fct_;
  GoodputMeter goodput_;
  LinkState links_;
  FaultPlane faults_;
  std::unique_ptr<NegotiatorScheduler> scheduler_;
  std::int64_t epoch_{0};
  std::size_t prev_epoch_grants_{0};
  std::vector<double> ratio_series_;
  std::vector<Bytes> arrived_;  // [src * N + dst], cumulative (stateful)
  std::int64_t total_matches_{0};
  std::int64_t match_slots_offered_{0};
  std::int64_t match_slots_used_{0};
  std::int64_t piggyback_packets_{0};
  std::unique_ptr<HostPlane> host_plane_;
  /// Pause state advertised to senders during the previous predefined
  /// phase; refreshed once per epoch.
  std::vector<bool> pause_advertised_;

  /// One live predefined-phase connection, fully resolved, so the slot
  /// loop reads flat records instead of re-deriving dst/rx/link health
  /// indices through virtual calls.
  struct PredefConn {
    TorId src;
    PortId tx;
    TorId dst;
    PortId rx;
    std::uint32_t tx_link;  // LinkState raw index, egress at (src, tx)
    std::uint32_t rx_link;  // LinkState raw index, ingress at (dst, rx)
  };

  // --- Sparse predefined phase (the demand-driven epoch pipeline) ---
  //
  // Instead of scanning all slots×N×P connections (O(N^2) per epoch), each
  // epoch gathers only the *interesting* pairs — pairs with outgoing
  // control messages (scheduler_->epoch_out_pairs()) plus pairs with
  // piggyback data (active_sources_ × their active destinations) — and
  // resolves each pair's connection(s) under this epoch's rotation via
  // PredefinedSchedule::pair_connections, bucketed per slot and sorted by
  // (src, tx) so the visit order matches the dense scan exactly.
  //
  // Dirty-set invariants:
  //  - who marks: gather_predefined_pair() (at epoch start, and from
  //    on_flow_arrival for flows landing mid-phase), stamped once per pair
  //    per epoch in predef_gather_stamp_;
  //  - who clears: run_predefined_phase() resets the buckets each epoch;
  //  - a slot whose links are unhealthy falls back to the dense scan so
  //    the fault detector still observes every connection.

  /// Resolves one predefined connection's rx port and link indices — the
  /// single definition the sparse gather and the dense fallback share.
  PredefConn resolve_predef_conn(TorId src, PortId tx, TorId dst) const;
  /// Adds pair (src, dst)'s connections for the current epoch/rotation to
  /// the per-slot buckets (only slots still ahead of the cursor).
  void gather_predefined_pair(TorId src, TorId dst);
  /// Dense fallback for one slot: visits all N×P connections (unhealthy
  /// slots, where every link must be observed).
  void run_predefined_slot_dense(int slot);
  /// Visits one resolved connection (shared by sparse and dense paths).
  /// Deliveries are staged; the slot's close flushes them as one span.
  void visit_predefined_conn(const PredefConn& c, bool healthy);

  // --- Intra-run sharding (engine/slot_shard_executor.h) ---
  //
  // With a parallel shard executor attached, eligible slots run as a
  // parallel *plan* over contiguous source ranges plus a serial *commit*
  // in ascending shard order, bit-identical to the serial walk. A slot is
  // eligible only when it is healthy (all links up, fault plane quiescent
  // via the existing `healthy` flag) and the fabric carries no RNG-drawing
  // hot-path subsystem (can_shard_slots_: no control/data channel, no ARQ
  // transport) — everything else falls back to the unchanged serial code.
  //
  // Worker-side writes are confined to per-source state the shard owns
  // (its ToR switches, relay queues, dropped chains, relay_remaining) plus
  // the shard's SlotShard staging buffer; active_sources_/relay_active_
  // syncs, delivery records, inbox messages, train chunks and counters are
  // staged and committed serially.

  /// Per-shard effect buffer (plan-phase output).
  struct SlotShard {
    NegotiatorScheduler::StagedMessages messages;  // predefined phase only
    std::vector<DeliveryRecord> deliveries;
    std::vector<TorId> touched_sources;  // sync_source_activity at commit
    std::vector<TorId> touched_relays;   // sync_relay_activity at commit
    std::vector<RelayTrainChunk> train_chunks;  // first-hop relay staging
    std::vector<std::int32_t> keep;             // live-match compaction
    std::int64_t piggyback_packets{0};
    std::int64_t match_slots_used{0};
    void clear() {
      messages.clear();
      deliveries.clear();
      touched_sources.clear();
      touched_relays.clear();
      train_chunks.clear();
      keep.clear();
      piggyback_packets = 0;
      match_slots_used = 0;
    }
  };

  /// Worker-side twin of visit_predefined_conn's healthy path: cross-shard
  /// effects go to `shard` instead of shared state.
  void plan_predefined_conn(const PredefConn& c, SlotShard& shard);
  /// One healthy predefined slot, sharded over its bucket.
  void run_predefined_slot_sharded(const std::vector<PredefConn>& bucket);
  /// One healthy scheduled slot, sharded over the live-match list.
  void run_scheduled_slot_sharded();
  /// Closes a scheduled slot's relay-train staging: one goodput record and
  /// one train event per touched intermediate, then clears the staging.
  void ship_relay_trains(Nanos arrival);

  std::unique_ptr<SlotShardExecutor> shard_exec_;  // null = serial build
  /// No RNG-drawing subsystem on the slot hot path (set once at
  /// construction): sharded slots require it.
  bool can_shard_slots_{false};
  /// This epoch's sched_matches_ are grouped by ascending source — the
  /// precondition for sharding scheduled slots (live_matches_ index order
  /// then equals source order). Recomputed every epoch; variant schedulers
  /// may emit ungrouped matches, which simply forces the serial path.
  bool sched_src_sorted_{false};
  std::vector<SlotShard> slot_shards_;
  std::vector<SlotShardExecutor::Range> shard_ranges_;
  std::uint64_t sharded_slots_{0};

  std::vector<std::vector<PredefConn>> predef_buckets_;  // one per slot
  std::vector<std::int64_t> predef_gather_stamp_;  // [src*N+dst] -> epoch
  int predef_rotation_{0};        // rotation of the epoch being gathered
  int predef_cursor_{0};          // slot currently being processed
  bool in_predefined_phase_{false};
  std::vector<PredefinedSchedule::Connection> pair_conn_scratch_;

  // --- Scheduled-phase live-match list ---
  //
  // An over-scheduled match spends most of its 30 slots with a drained
  // queue (§3.5). Instead of re-checking every match every slot, the phase
  // iterates a compact ascending index list of *live* matches; a match
  // whose queue is found empty is dropped from the list and reactivated —
  // at its original position, preserving the dense visit order exactly —
  // only when a flow for its (src, dst) pair arrives mid-phase. Only the
  // plain-negotiator path drops (relay matches and relay-enabled fabrics
  // keep full iteration: their other data sources refill invisibly).
  struct ActiveMatch {
    Match m;
    Bytes relay_remaining;
    std::uint32_t tx_link;  // LinkState raw index, egress
    std::uint32_t rx_link;  // LinkState raw index, ingress
  };
  std::vector<ActiveMatch> sched_matches_;     // this epoch's matches
  bool in_scheduled_phase_{false};
  std::vector<std::int32_t> live_matches_;     // ascending indices, compacted
  std::vector<std::int32_t> dropped_heads_;    // [src] -> chain head
  std::vector<std::int64_t> dropped_stamp_;    // [src] -> epoch of that head
  std::vector<std::int32_t> dropped_next_;     // [match index] -> next in chain

  /// rx port of a transmission leaving (src, tx) — destination-independent
  /// in both topologies, precomputed once. kInvalidPort for a port that
  /// reaches no one (thin-clos self block of size 1).
  std::vector<PortId> rx_port_table_;  // [src * ports_per_tor + tx]

  /// Dirty sets of ToRs with pending direct data / parked relay bytes.
  ActiveSet active_sources_;
  ActiveSet relay_active_;

  /// Per-slot chunk-train assembly for the selective-relay variant: the
  /// scheduled phase's first-hop relay chunks accumulate per intermediate
  /// (in match-visit order) and leave as one RelayTrainEvent per
  /// (slot, intermediate) when the slot closes. Empty unless
  /// relay_enabled_.
  std::vector<std::vector<RelayTrainChunk>> train_build_;  // [intermediate]
  std::vector<TorId> train_touched_;

  /// Per-slot delivery span (both phases): records staged in dequeue order,
  /// flushed once per slot. Counters feed deliveries_per_dispatch in
  /// bench_perf_engine.
  std::vector<DeliveryRecord> delivery_build_;
  std::uint64_t deliveries_{0};
  std::uint64_t delivery_dispatches_{0};

  // --- Lossy control plane (core/control_channel.h) ---
  //
  // Owned here, consulted by the scheduler at its exchange points. Absent
  // (the default) every path above is byte-identical to a channel-free
  // build — the goldens pin this.
  std::unique_ptr<ControlChannel> control_;
  /// Per-epoch matching invariant checks (core/matching_validator.h);
  /// created when config.validate_matching is set, and always in
  /// !NDEBUG builds.
  std::unique_ptr<MatchingValidator> validator_;

  // --- Lossy data plane (core/data_channel.h + tor/host_transport.h) ---
  //
  // Same contract as the control channel: absent (the default) every data
  // path is byte-identical to a channel-free build. The transport exists
  // only when data_fault.arq is also set; the auditor arms like the
  // MatchingValidator (validate_matching or !NDEBUG) whenever the channel
  // exists.
  std::unique_ptr<DataChannel> data_;
  std::unique_ptr<HostTransport> transport_;
  std::unique_ptr<ConservationAuditor> auditor_;
  /// Ledger counters maintained only when data_ exists.
  Bytes injected_bytes_{0};
  Bytes transit_bytes_{0};  // scheduled train chunks not yet landed
  /// Assembles the epoch-boundary ledger and runs the auditor.
  void audit_conservation();

  // Fallback state (empty unless control_fault.fallback):
  /// Epochs a source must stay active-but-unmatched before the fallback
  /// engages for it (see prepare_fallback_epoch).
  static constexpr int kFallbackStarvationEpochs = 2;
  std::vector<std::int64_t> fb_tx_stamp_;  // [src*P+tx] -> booked epoch
  std::vector<std::int64_t> fb_rx_stamp_;  // [dst*P+rx] -> booked epoch
  std::vector<int> fb_starved_;            // consecutive unmatched epochs
  std::vector<TorId> fb_sources_;          // persistently starved sources
  std::int64_t sched_slot_counter_{0};     // global, cycles the rotor rule
  std::int64_t degraded_slots_{0};
  Bytes fallback_bytes_{0};
};

/// Builds the fabric matching `config.scheduler` (NegotiaToR family or the
/// traffic-oblivious baseline). Validates the config.
std::unique_ptr<FabricSim> make_fabric(const NetworkConfig& config,
                                       Nanos stats_window_ns = 0);

}  // namespace negotiator
