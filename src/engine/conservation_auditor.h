// Byte-conservation auditor for the lossy data plane: every byte a
// workload injects must be accounted for at every epoch boundary.
//
// The fabrics assemble a ConservationLedger snapshot (O(N) queue sums
// plus running counters) at the end of each epoch (negotiator) or rotor
// cycle (oblivious) and hand it to check(), which asserts the
// conservation identity:
//
//   without ARQ:  injected = source_queued + relay_parked + in_transit
//                            + delivered + dropped + corrupted
//   with ARQ:     injected = source_queued + arq_unresolved + delivered
//                            + arq_abandoned
//
// With ARQ the transport's unresolved bucket subsumes relay_parked,
// in_transit, and every dropped-awaiting-retransmit byte (a unit stays
// unresolved from first transmit until its first arrival or abandonment
// — see tor/host_transport.h), and the transport's own receiver-side
// delivered ledger must agree with the FlowTable's credit total, which
// check() also asserts.
//
// Arming follows MatchingValidator's contract: constructed whenever the
// data channel exists and config.validate_matching is set — and always
// in !NDEBUG (debug/sanitizer) builds. A violation aborts via
// NEG_ASSERT. Absent (the default in release), the fabrics skip the
// ledger assembly entirely.
#pragma once

#include <cstdint>

#include "common/assert.h"
#include "common/types.h"

namespace negotiator {

struct ConservationLedger {
  Bytes injected{0};       ///< accepted into source ToR queues so far
  Bytes source_queued{0};  ///< fresh bytes still in ToR dest queues
  Bytes relay_parked{0};   ///< bytes parked at intermediates (non-ARQ)
  Bytes in_transit{0};     ///< bytes inside in-flight chunk trains (non-ARQ)
  Bytes delivered{0};      ///< FlowTable credit total
  Bytes dropped{0};        ///< channel drops (terminal without ARQ)
  Bytes corrupted{0};      ///< channel corruptions (terminal without ARQ)
  Bytes arq_unresolved{0}; ///< ARQ: transmitted, before first arrival
  Bytes arq_delivered{0};  ///< ARQ: transport's receiver-side credit
  Bytes arq_abandoned{0};  ///< ARQ: max_retries exceeded (terminal)
};

class ConservationAuditor {
 public:
  explicit ConservationAuditor(bool arq) : arq_(arq) {}

  void check(std::int64_t epoch, const ConservationLedger& l) {
    (void)epoch;
    ++checks_;
    if (arq_) {
      NEG_ASSERT(l.delivered == l.arq_delivered,
                 "conservation: transport and FlowTable delivery ledgers "
                 "disagree");
      NEG_ASSERT(l.injected == l.source_queued + l.arq_unresolved +
                                   l.delivered + l.arq_abandoned,
                 "conservation: injected != queued + unresolved + "
                 "delivered + abandoned");
    } else {
      NEG_ASSERT(l.injected == l.source_queued + l.relay_parked +
                                   l.in_transit + l.delivered + l.dropped +
                                   l.corrupted,
                 "conservation: injected != queued + parked + transit + "
                 "delivered + dropped + corrupted");
    }
  }

  std::int64_t checks() const { return checks_; }

 private:
  bool arq_;
  std::int64_t checks_{0};
};

}  // namespace negotiator
