// Convenience façade used by examples, tests and benchmarks: build a
// fabric, feed flows, run for a duration, collect the paper's metrics.
#pragma once

#include <memory>
#include <vector>

#include "common/config.h"
#include "engine/network.h"
#include "stats/fct_recorder.h"

namespace negotiator {

struct RunResult {
  FctSummary mice;        ///< mice flows (< 10 KB), all groups
  FctSummary all_flows;   ///< every flow
  double goodput{0.0};    ///< normalized to host-aggregate bandwidth
  double mean_match_ratio{0.0};  ///< Fig. 14 accepts/grants (0 if n/a)
  Nanos epoch_ns{0};      ///< epoch (or rotor-cycle) length, for unit talk
  std::size_t completed{0};
  Bytes backlog{0};       ///< bytes still queued at the end
};

class Runner {
 public:
  explicit Runner(const NetworkConfig& config, Nanos stats_window_ns = 0);

  FabricSim& fabric() { return *fabric_; }
  const NetworkConfig& config() const { return fabric_->config(); }

  void add_flows(const std::vector<Flow>& flows) {
    fabric_->add_flows(flows);
  }

  /// Runs until `duration`; metrics cover [measure_from, duration).
  RunResult run(Nanos duration, Nanos measure_from = 0);

  /// Keeps running (in epoch-sized steps, up to `deadline`) until `count`
  /// flows of `group` completed; returns the completion instant of the last
  /// one, or kNeverNs on timeout. Used for incast/all-to-all finish times.
  Nanos finish_time_of_group(int group, std::size_t count, Nanos deadline);

 private:
  std::unique_ptr<FabricSim> fabric_;
};

/// Sweeps the Fig. 8 knob: scales the scheduled phase with the guardband so
/// the reconfiguration overhead ratio stays fixed (§4.2).
NetworkConfig with_reconfiguration_delay(NetworkConfig config,
                                         Nanos guardband_ns);

}  // namespace negotiator
