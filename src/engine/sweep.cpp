#include "engine/sweep.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "workload/generator.h"

namespace negotiator {

namespace {

/// One workload trace shared by a run of points that are identical except
/// for `measure_from`/`label`. Generated once, by whichever worker gets
/// there first (call_once keeps that race deterministic in outcome).
struct SharedWorkload {
  std::once_flag once;
  std::vector<Flow> flows;
};

std::vector<Flow> generate_workload(const SweepPoint& point) {
  WorkloadGenerator gen(point.sizes, point.config.num_tors,
                        point.config.host_rate(), point.load,
                        Rng(point.seed));
  return gen.generate(0, point.duration);
}

/// The standard measurement applied to an already generated trace — the
/// single definition both the cached and uncached paths go through, so
/// they cannot drift apart.
RunResult run_with_flows(const SweepPoint& point,
                         const std::vector<Flow>& flows) {
  Runner runner(point.config);
  runner.add_flows(flows);
  return runner.run(point.duration, point.measure_from);
}

/// True when the two standard points would generate byte-identical
/// workload traces *and* run them on identical fabrics — i.e. they may
/// differ only in `measure_from` and `label`. Custom bodies are never
/// shared (they own their workload generation).
bool may_share_workload(const SweepPoint& a, const SweepPoint& b) {
  return !a.body && !b.body && a.config == b.config && a.seed == b.seed &&
         a.duration == b.duration && a.load == b.load && a.sizes == b.sizes;
}

SweepOutcome execute_point(const SweepPoint& point, SharedWorkload* shared) {
  SweepOutcome outcome;
  try {
    if (point.body) {
      outcome = point.body(point);
    } else if (shared != nullptr) {
      std::call_once(shared->once,
                     [&] { shared->flows = generate_workload(point); });
      outcome.result = run_with_flows(point, shared->flows);
    } else {
      outcome.result = run_standard_point(point);
    }
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = e.what();
  } catch (...) {
    outcome.ok = false;
    outcome.error = "unknown exception";
  }
  return outcome;
}

/// shared[i] is non-null iff point i belongs to a maximal run of >= 2
/// consecutive points that may share one generated workload.
std::vector<std::shared_ptr<SharedWorkload>> plan_workload_cache(
    const std::vector<SweepPoint>& points) {
  std::vector<std::shared_ptr<SharedWorkload>> shared(points.size());
  std::size_t i = 0;
  while (i < points.size()) {
    std::size_t j = i + 1;
    while (j < points.size() &&
           may_share_workload(points[i], points[j])) {
      ++j;
    }
    if (j - i >= 2) {
      auto cache = std::make_shared<SharedWorkload>();
      for (std::size_t k = i; k < j; ++k) shared[k] = cache;
    }
    i = j;
  }
  return shared;
}

}  // namespace

RunResult run_standard_point(const SweepPoint& point) {
  return run_with_flows(point, generate_workload(point));
}

SweepEngine::SweepEngine(unsigned threads)
    : threads_(threads != 0 ? threads : default_threads()) {}

unsigned SweepEngine::default_threads() {
  if (const char* env = std::getenv("NEG_BENCH_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

std::vector<SweepOutcome> SweepEngine::run(
    const std::vector<SweepPoint>& points) const {
  std::vector<SweepOutcome> outcomes(points.size());
  // Consecutive points that differ only in measure_from/label (e.g. a
  // warm-up-window study) share one generated workload trace instead of
  // regenerating it per point. Results are bit-identical either way: the
  // trace is a pure function of (sizes, config, load, seed, duration).
  const auto shared = plan_workload_cache(points);
  if (threads_ <= 1 || points.size() <= 1) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      outcomes[i] = execute_point(points[i], shared[i].get());
    }
    return outcomes;
  }
  // No point spawning workers that could never receive a task.
  ThreadPool pool(static_cast<unsigned>(
      std::min<std::size_t>(threads_, points.size())));
  for (std::size_t i = 0; i < points.size(); ++i) {
    pool.submit([&points, &outcomes, &shared, i] {
      outcomes[i] = execute_point(points[i], shared[i].get());
    });
  }
  pool.drain();
  return outcomes;
}

}  // namespace negotiator
