#include "engine/sweep.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <thread>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "workload/generator.h"

namespace negotiator {

namespace {

SweepOutcome execute_point(const SweepPoint& point) {
  SweepOutcome outcome;
  try {
    if (point.body) {
      outcome = point.body(point);
    } else {
      outcome.result = run_standard_point(point);
    }
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = e.what();
  } catch (...) {
    outcome.ok = false;
    outcome.error = "unknown exception";
  }
  return outcome;
}

}  // namespace

RunResult run_standard_point(const SweepPoint& point) {
  WorkloadGenerator gen(point.sizes, point.config.num_tors,
                        point.config.host_rate(), point.load,
                        Rng(point.seed));
  Runner runner(point.config);
  runner.add_flows(gen.generate(0, point.duration));
  return runner.run(point.duration, point.measure_from);
}

SweepEngine::SweepEngine(unsigned threads)
    : threads_(threads != 0 ? threads : default_threads()) {}

unsigned SweepEngine::default_threads() {
  if (const char* env = std::getenv("NEG_BENCH_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

std::vector<SweepOutcome> SweepEngine::run(
    const std::vector<SweepPoint>& points) const {
  std::vector<SweepOutcome> outcomes(points.size());
  if (threads_ <= 1 || points.size() <= 1) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      outcomes[i] = execute_point(points[i]);
    }
    return outcomes;
  }
  // No point spawning workers that could never receive a task.
  ThreadPool pool(static_cast<unsigned>(
      std::min<std::size_t>(threads_, points.size())));
  for (std::size_t i = 0; i < points.size(); ++i) {
    pool.submit([&points, &outcomes, i] {
      outcomes[i] = execute_point(points[i]);
    });
  }
  pool.drain();
  return outcomes;
}

}  // namespace negotiator
