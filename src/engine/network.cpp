#include "engine/network.h"

#include <algorithm>

#include "common/assert.h"
#include "oblivious/oblivious_scheduler.h"
#include "stats/resilience_recorder.h"
#include "topo/topology_factory.h"

namespace negotiator {

// ---------------------------------------------------------------- FlowTable

int FlowTable::add(const Flow& flow) {
  NEG_ASSERT(flow.size > 0, "flow must carry data");
  NEG_ASSERT(flow.src != flow.dst, "self flows not modelled");
  states_.push_back(State{flow, 0, false});
  return static_cast<int>(states_.size()) - 1;
}

const Flow& FlowTable::flow(int index) const {
  return states_[static_cast<std::size_t>(index)].flow;
}

bool FlowTable::done(int index) const {
  return states_[static_cast<std::size_t>(index)].done;
}

void FlowTable::credit(int index, Bytes bytes, Nanos arrival,
                       FctRecorder& fct) {
  State& s = states_[static_cast<std::size_t>(index)];
  NEG_ASSERT(!s.done, "delivery to a completed flow");
  s.delivered += bytes;
  total_delivered_ += bytes;
  NEG_ASSERT(s.delivered <= s.flow.size, "over-delivery");
  if (s.delivered == s.flow.size) {
    s.done = true;
    fct.record(FctSample{s.flow.id, s.flow.size, s.flow.arrival,
                         arrival - s.flow.arrival, s.flow.group});
  }
}

void FlowTable::credit_span(const DeliveryRecord* records, std::size_t n,
                            Nanos arrival, FctRecorder& fct) {
  completed_scratch_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    State& s = states_[static_cast<std::size_t>(records[i].flow)];
    NEG_ASSERT(!s.done, "delivery to a completed flow");
    s.delivered += records[i].bytes;
    total_delivered_ += records[i].bytes;
    NEG_ASSERT(s.delivered <= s.flow.size, "over-delivery");
    if (s.delivered == s.flow.size) {
      s.done = true;
      completed_scratch_.push_back(
          FctSample{s.flow.id, s.flow.size, s.flow.arrival,
                    arrival - s.flow.arrival, s.flow.group});
    }
  }
  fct.record_span(completed_scratch_.data(), completed_scratch_.size());
}

// --------------------------------------------------------- NegotiatorFabric

NegotiatorFabric::NegotiatorFabric(const NetworkConfig& config,
                                   Nanos stats_window_ns)
    : config_(config),
      topo_(make_topology(config)),
      schedule_(config.topology, config.num_tors, config.ports_per_tor),
      timing_(config),
      relay_enabled_(config.scheduler ==
                     SchedulerKind::kNegotiatorSelectiveRelay),
      goodput_(config.num_tors, stats_window_ns),
      links_(config.num_tors, config.ports_per_tor),
      faults_(config.num_tors, config.ports_per_tor),
      arrived_(static_cast<std::size_t>(config.num_tors) * config.num_tors,
               0),
      predef_buckets_(static_cast<std::size_t>(schedule_.slots())),
      predef_gather_stamp_(
          static_cast<std::size_t>(config.num_tors) * config.num_tors, -1),
      dropped_heads_(static_cast<std::size_t>(config.num_tors), -1),
      dropped_stamp_(static_cast<std::size_t>(config.num_tors), -1),
      active_sources_(config.num_tors),
      relay_active_(config.num_tors) {
  config_.validate();
  Rng rng(config_.seed);
  tors_.reserve(static_cast<std::size_t>(config_.num_tors));
  for (TorId t = 0; t < config_.num_tors; ++t) {
    tors_.emplace_back(t, config_.num_tors, config_.pias);
  }
  if (relay_enabled_) {
    relay_.reserve(static_cast<std::size_t>(config_.num_tors));
    for (TorId t = 0; t < config_.num_tors; ++t) {
      relay_.emplace_back(config_.num_tors);
    }
    train_build_.resize(static_cast<std::size_t>(config_.num_tors));
  }
  if (config_.host_plane.enabled) {
    host_plane_ = std::make_unique<HostPlane>(
        config_.num_tors, config_.host_rate(), config_.host_plane);
    pause_advertised_.assign(static_cast<std::size_t>(config_.num_tors),
                             false);
  }
  scheduler_ = make_negotiator_scheduler(config_, *topo_, rng.fork());
  sim_.set_sink(this);

  // Lossy control plane: the channel's stream derives from the run seed
  // with a fixed salt, NOT from the fork chain above — forking would
  // advance `rng` and shift the scheduler's stream, breaking every
  // loss-free golden. Disabled -> never constructed -> zero draws.
  if (config_.control_fault.enabled) {
    control_ = std::make_unique<ControlChannel>(
        config_.control_fault,
        make_salted_stream(config_.seed, kControlChannelSeedSalt));
    scheduler_->set_control_channel(control_.get());
    if (config_.control_fault.fallback) {
      fb_tx_stamp_.assign(static_cast<std::size_t>(config_.num_tors) *
                              config_.ports_per_tor,
                          -1);
      fb_rx_stamp_.assign(fb_tx_stamp_.size(), -1);
      fb_starved_.assign(static_cast<std::size_t>(config_.num_tors), 0);
    }
  }
  bool validate = config_.validate_matching;
#ifndef NDEBUG
  validate = true;  // invariants always on in debug/sanitizer builds
#endif
  if (validate) validator_ = std::make_unique<MatchingValidator>(*topo_);

  // Lossy data plane + end-host ARQ: same salted private-stream contract
  // as the control channel above — disabled -> never constructed -> zero
  // draws, so every loss-free golden stays byte-identical. The auditor
  // arms alongside the MatchingValidator (validate_matching or !NDEBUG)
  // whenever the channel exists.
  if (config_.data_fault.enabled) {
    data_ = std::make_unique<DataChannel>(
        config_.data_fault,
        make_salted_stream(config_.seed, kDataChannelSeedSalt));
    if (config_.data_fault.arq) {
      transport_ = std::make_unique<HostTransport>(config_, &sim_.events());
    }
    if (validate) {
      auditor_ =
          std::make_unique<ConservationAuditor>(config_.data_fault.arq);
    }
  }

  // Intra-run sharding (ROADMAP item 1): resolve the worker count here so
  // threads == 1 never constructs the executor and every path below runs
  // the unchanged serial code. Slots shard only on a channel-free fabric —
  // the lossy control/data planes and the ARQ transport draw from shared
  // RNG streams in visit order, which a parallel scan cannot reproduce;
  // such runs keep the executor for the scheduler's RNG-free compute
  // walks and fall back serial for slots.
  const int sim_threads =
      SlotShardExecutor::resolve_threads(config_.sim_threads);
  if (sim_threads > 1) {
    shard_exec_ = std::make_unique<SlotShardExecutor>(sim_threads);
    scheduler_->set_shard_executor(shard_exec_.get());
    can_shard_slots_ =
        control_ == nullptr && data_ == nullptr && transport_ == nullptr;
  }

  // rx ports are destination-independent in both topologies (parallel:
  // plane-preserving rx == tx; thin-clos: rx pinned by the source's
  // block), so resolve them through the virtual interface once instead of
  // per slot in the predefined hot loop.
  rx_port_table_.assign(
      static_cast<std::size_t>(config_.num_tors) * config_.ports_per_tor,
      kInvalidPort);
  for (TorId s = 0; s < config_.num_tors; ++s) {
    for (PortId p = 0; p < config_.ports_per_tor; ++p) {
      for (TorId d = 0; d < config_.num_tors; ++d) {
        if (d == s || !topo_->reachable(s, p, d)) continue;
        rx_port_table_[static_cast<std::size_t>(s) * config_.ports_per_tor +
                       p] = topo_->rx_port(s, p, d);
        break;
      }
    }
  }
}

void NegotiatorFabric::on_flow_arrival(const FlowArrivalEvent& e, Nanos now) {
  const Flow& f = flow_table_.flow(e.flow_index);
  // Queues carry the dense FlowTable index; the external id only appears
  // in reported samples.
  Flow queued = f;
  queued.id = e.flow_index;
  tors_[static_cast<std::size_t>(f.src)].accept_flow(queued, now);
  active_sources_.insert(f.src);
  if (data_) injected_bytes_ += f.size;  // conservation ledger
  arrived_[static_cast<std::size_t>(f.src) * config_.num_tors + f.dst] +=
      f.size;
  // A flow landing mid-predefined-phase can piggyback on its pair's
  // not-yet-passed connection(s) this very epoch, exactly like the dense
  // scan would have picked it up.
  if (in_predefined_phase_ && config_.piggyback) {
    gather_predefined_pair(f.src, f.dst);
  }
  // A flow landing mid-scheduled-phase refills its pair's queue:
  // reactivate any matches for (src, dst) that were dropped as drained.
  // Sorted reinsertion keeps live_matches_ ascending, i.e. the dense visit
  // order.
  if (in_scheduled_phase_ &&
      dropped_stamp_[static_cast<std::size_t>(f.src)] == epoch_) {
    std::int32_t* link = &dropped_heads_[static_cast<std::size_t>(f.src)];
    while (*link >= 0) {
      const std::int32_t index = *link;
      if (sched_matches_[static_cast<std::size_t>(index)].m.dst == f.dst) {
        *link = dropped_next_[static_cast<std::size_t>(index)];
        live_matches_.insert(
            std::lower_bound(live_matches_.begin(), live_matches_.end(),
                             index),
            index);
      } else {
        link = &dropped_next_[static_cast<std::size_t>(index)];
      }
    }
  }
}

void NegotiatorFabric::on_link_toggle(const LinkToggleEvent& e, Nanos now) {
  if (e.fail) {
    links_.fail(e.tor, e.port, e.dir);
  } else {
    links_.repair(e.tor, e.port, e.dir);
  }
  if (resilience_) {
    resilience_->on_link_toggle(now, e.tor, e.port, e.dir, e.fail);
  }
}

void NegotiatorFabric::on_relay_handoff(const RelayHandoffEvent& e,
                                        Nanos now) {
  NEG_ASSERT(relay_enabled_, "relay handoff without selective relay");
  relay_[static_cast<std::size_t>(e.intermediate)].enqueue(e.final_dst,
                                                           e.flow, e.bytes,
                                                           now);
  relay_active_.insert(e.intermediate);
}

void NegotiatorFabric::on_relay_train(const RelayTrainEvent& e,
                                      const RelayTrainChunk* chunks,
                                      Nanos now) {
  NEG_ASSERT(relay_enabled_, "relay train without selective relay");
  // The scheduled phase ships one train per (slot, intermediate), so a
  // span is normally a single run; the run loop keeps mixed spans correct
  // anyway. Each run lands through the relay queue's bulk span ingest.
  std::uint32_t i = 0;
  while (i < e.count) {
    const TorId inter = chunks[i].intermediate;
    std::uint32_t j = i + 1;
    while (j < e.count && chunks[j].intermediate == inter) ++j;
    relay_[static_cast<std::size_t>(inter)].enqueue_span(chunks + i, j - i,
                                                         now);
    relay_active_.insert(inter);
    i = j;
  }
  if (data_) {
    for (std::uint32_t k = 0; k < e.count; ++k) {
      transit_bytes_ -= chunks[k].bytes;  // landed: in-transit -> parked
    }
  }
}

void NegotiatorFabric::add_flow(const Flow& flow) {
  NEG_ASSERT(flow.arrival >= sim_.now(), "flow arrives in the past");
  NEG_ASSERT(flow.src >= 0 && flow.src < config_.num_tors &&
                 flow.dst >= 0 && flow.dst < config_.num_tors,
             "flow endpoints out of range");
  const int index = flow_table_.add(flow);
  sim_.events().schedule_flow_arrival(flow.arrival, index);
}

void NegotiatorFabric::schedule_link_event(Nanos when, TorId tor, PortId port,
                                           LinkDirection dir, bool fail) {
  sim_.events().schedule_link_toggle(when,
                                     LinkToggleEvent{tor, port, dir, fail});
}

void NegotiatorFabric::schedule_control_brownout(Nanos start, Nanos end,
                                                 double drop_floor) {
  // Tolerated without a channel (a loss-free fabric simply has no control
  // plane to brown out) so scenarios with brownout specs install cleanly
  // on any fabric, mirroring the base-class default.
  if (control_) control_->add_brownout(start, end, drop_floor);
}

void NegotiatorFabric::schedule_data_loss(Nanos start, Nanos end,
                                          double drop_floor) {
  // Same tolerance as brownouts: without a data channel the loss window
  // simply has no data plane to degrade.
  if (data_) data_->add_loss_window(start, end, drop_floor);
}

void NegotiatorFabric::set_resilience(ResilienceRecorder* recorder) {
  FabricSim::set_resilience(recorder);
  if (control_) control_->set_recorder(recorder);
  if (data_) data_->set_recorder(recorder);
  if (transport_) transport_->set_recorder(recorder);
}

void NegotiatorFabric::on_transport_timer(const TransportTimerEvent& e,
                                          Nanos now) {
  NEG_ASSERT(transport_ != nullptr, "transport timer without a transport");
  if (transport_->on_timer(e.flow_index, now) && in_predefined_phase_) {
    // The fire moved units into a retransmit FIFO mid-predefined-phase:
    // re-gather the pair so a not-yet-passed connection can serve it this
    // very epoch (mirrors the mid-phase flow-arrival hook above).
    gather_predefined_pair(transport_->flow_src(e.flow_index),
                           transport_->flow_dst(e.flow_index));
  }
}

void NegotiatorFabric::transmit_direct(int flow_index, TorId src, TorId dst,
                                       Bytes bytes, Nanos now) {
  std::uint32_t seq = 0;
  if (transport_) {
    seq = transport_->on_transmit(flow_index, src, dst, bytes, now);
  }
  if (data_) {
    const DataChannel::Fate fate =
        data_->classify(DataHopClass::kFirstHop, bytes);
    if (!fate.deliver) return;  // lost in flight (ARQ will retransmit)
  }
  stage_delivery(flow_index, dst, bytes, seq);
}

bool NegotiatorFabric::try_retransmit(TorId src, TorId dst, Nanos now) {
  if (!transport_ || !transport_->has_retx(src, dst)) return false;
  const HostTransport::RetxChunk r = transport_->take_retx(src, dst, now);
  // A retransmission is a first-hop transmission like any other: it
  // redraws the channel and can be lost again (the timer re-covers it).
  const DataChannel::Fate fate =
      data_->classify(DataHopClass::kFirstHop, r.bytes);
  if (fate.deliver) stage_delivery(r.flow, dst, r.bytes, r.seq);
  return true;
}

void NegotiatorFabric::flush_deliveries(Nanos arrival) {
  if (delivery_build_.empty()) return;
  if (transport_) {
    // Receiver-side ARQ filter: only a unit's first arrival survives to
    // the credit/goodput/host-plane effects below; duplicates and copies
    // of abandoned units vanish here.
    std::size_t keep = 0;
    for (const DeliveryRecord& r : delivery_build_) {
      if (transport_->on_deliver(static_cast<std::int32_t>(r.flow), r.seq,
                                 r.bytes, arrival)) {
        delivery_build_[keep++] = r;
      }
    }
    delivery_build_.resize(keep);
    if (delivery_build_.empty()) return;
  }
  const std::size_t n = delivery_build_.size();
  if (resilience_ && links_.failed_count() > 0) {
    Bytes degraded = 0;
    for (const DeliveryRecord& r : delivery_build_) degraded += r.bytes;
    resilience_->on_degraded_delivery(degraded);
  }
  flow_table_.credit_span(delivery_build_.data(), n, arrival, fct_);
  goodput_.record_delivery_span(delivery_build_.data(), n, arrival);
  if (host_plane_) {
    // Same per-record order and shared timestamp as the inline calls the
    // span replaces, so the receive-buffer trajectory is identical.
    for (const DeliveryRecord& r : delivery_build_) {
      host_plane_->on_delivery(r.dst, r.bytes, arrival);
    }
  }
  deliveries_ += n;
  ++delivery_dispatches_;
  delivery_build_.clear();
}

void NegotiatorFabric::run_until(Nanos t) {
  while (timing_.epoch_start(epoch_) < t) run_epoch();
  // The last epoch may have carried the clock past t already.
  if (t > sim_.now()) sim_.advance_to(t);
}

void NegotiatorFabric::run_epoch() {
  sim_.advance_to(timing_.epoch_start(epoch_));
  if (host_plane_) {
    // Pause bits ride the previous predefined phase's dummy messages; the
    // epoch-start snapshot is what senders know this epoch.
    for (TorId t = 0; t < config_.num_tors; ++t) {
      pause_advertised_[static_cast<std::size_t>(t)] =
          host_plane_->rx_paused(t, sim_.now());
    }
  }
  if (control_) control_->begin_epoch(sim_.now());
  if (data_) data_->begin_epoch(sim_.now());
  if (transport_) transport_->flush_acks(sim_.now());
  scheduler_->begin_epoch(epoch_, sim_.now(), *this, faults_);
  if (validator_) {
    NEG_ASSERT(validator_->validate(scheduler_->matches(), epoch_),
               validator_->error().c_str());
  }

  // Match ratio (Fig. 14): the accepts of epoch e answer the grants issued
  // in epoch e-1.
  if (prev_epoch_grants_ > 0) {
    ratio_series_.push_back(static_cast<double>(scheduler_->epoch_accepts()) /
                            static_cast<double>(prev_epoch_grants_));
  }
  if (control_ && resilience_) {
    resilience_->on_control_match(prev_epoch_grants_,
                                  scheduler_->epoch_accepts());
  }
  prev_epoch_grants_ = scheduler_->epoch_grants();

  run_predefined_phase();
  run_scheduled_phase();
  faults_.end_epoch(resilience_, sim_.now());
  if (auditor_) audit_conservation();
  ++epoch_;
}

void NegotiatorFabric::audit_conservation() {
  ConservationLedger l;
  l.injected = injected_bytes_;
  for (const TorSwitch& t : tors_) l.source_queued += t.total_pending();
  l.delivered = flow_table_.total_delivered();
  if (transport_) {
    l.arq_unresolved = transport_->unresolved_bytes();
    l.arq_delivered = transport_->delivered_bytes();
    l.arq_abandoned = transport_->abandoned_bytes();
  } else {
    for (const RelayQueueSet& r : relay_) l.relay_parked += r.total_bytes();
    l.in_transit = transit_bytes_;
    l.dropped = data_->dropped_bytes();
    l.corrupted = data_->corrupted_bytes();
  }
  auditor_->check(epoch_, l);
}

NegotiatorFabric::PredefConn NegotiatorFabric::resolve_predef_conn(
    TorId src, PortId tx, TorId dst) const {
  const PortId rx =
      rx_port_table_[static_cast<std::size_t>(src) * config_.ports_per_tor +
                     tx];
  return PredefConn{src,
                    tx,
                    dst,
                    rx,
                    static_cast<std::uint32_t>(
                        links_.raw_index(src, tx, LinkDirection::kEgress)),
                    static_cast<std::uint32_t>(
                        links_.raw_index(dst, rx, LinkDirection::kIngress))};
}

void NegotiatorFabric::gather_predefined_pair(TorId src, TorId dst) {
  const std::size_t index =
      static_cast<std::size_t>(src) * config_.num_tors + dst;
  if (predef_gather_stamp_[index] == epoch_) return;  // already bucketed
  predef_gather_stamp_[index] = epoch_;
  pair_conn_scratch_.clear();
  schedule_.pair_connections(src, dst, predef_rotation_, pair_conn_scratch_);
  for (const PredefinedSchedule::Connection& conn : pair_conn_scratch_) {
    if (conn.slot < predef_cursor_) continue;  // this slot already ran
    const PredefConn c = resolve_predef_conn(src, conn.tx_port, dst);
    auto& bucket = predef_buckets_[static_cast<std::size_t>(conn.slot)];
    // Keep the bucket sorted by (src, tx) — the dense scan's visit order.
    // Epoch-start gathering appends mostly in order; mid-phase arrivals
    // insert in place (rare).
    const auto pos = std::upper_bound(
        bucket.begin(), bucket.end(), c,
        [](const PredefConn& a, const PredefConn& b) {
          if (a.src != b.src) return a.src < b.src;
          return a.tx < b.tx;
        });
    bucket.insert(pos, c);
  }
}

void NegotiatorFabric::visit_predefined_conn(const PredefConn& c,
                                             bool healthy) {
  bool up = true;
  if (!healthy) {
    up = links_.up_raw(c.tx_link) && links_.up_raw(c.rx_link);
  }
  scheduler_->deliver_pair(c.src, c.dst, up);
  if (!healthy) {
    faults_.observe_ingress(c.dst, c.rx, up);
    faults_.observe_egress(c.src, c.tx, up);
  }
  // Bitmap membership == "queue non-empty": one bit read instead of a
  // pointer chase into the per-destination queue.
  TorSwitch& tor = tors_[static_cast<std::size_t>(c.src)];
  // Retransmissions outrank fresh piggyback data for the pair's slot
  // (selective repeat: the oldest lost unit is the flow's head of line).
  if (transport_ && up &&
      !(host_plane_ && pause_advertised_[static_cast<std::size_t>(c.dst)]) &&
      try_retransmit(c.src, c.dst, sim_.now())) {
    return;  // slot consumed by the retransmission
  }
  if (!config_.piggyback || !tor.active_destinations().contains(c.dst)) {
    return;
  }
  if (host_plane_ && pause_advertised_[static_cast<std::size_t>(c.dst)]) {
    return;  // §3.6.5: withhold data towards a paused receiver
  }
  if (up) {
    auto pkt = tor.dequeue_packet(c.dst, config_.piggyback_payload_bytes());
    NEG_ASSERT(pkt.has_value(), "pending queue yielded no packet");
    ++piggyback_packets_;
    sync_source_activity(c.src);
    transmit_direct(static_cast<int>(pkt->flow), c.src, c.dst, pkt->bytes,
                    sim_.now());
  } else if (!faults_.tx_excluded(c.src, c.tx) &&
             !faults_.rx_excluded(c.dst, c.rx)) {
    // Undetected failure: the packet is transmitted into a dark fibre
    // and retransmitted by the upper layer — model as a wasted slot
    // with the bytes back at the queue head.
    auto pkt = tor.dequeue_packet(c.dst, config_.piggyback_payload_bytes());
    if (pkt) {
      tor.requeue_front(c.dst, *pkt);
      if (resilience_) resilience_->on_blackholed(pkt->bytes);
    }
  }
}

void NegotiatorFabric::plan_predefined_conn(const PredefConn& c,
                                            SlotShard& shard) {
  // Healthy, channel-free twin of visit_predefined_conn: per-source queue
  // mutations happen in place (the shard owns c.src), every cross-source
  // effect is staged. No retransmit branch (no transport_) and no fate
  // draw (no data_) — can_shard_slots_ guarantees both.
  scheduler_->stage_pair(c.src, c.dst, /*ok=*/true, shard.messages);
  TorSwitch& tor = tors_[static_cast<std::size_t>(c.src)];
  if (!config_.piggyback || !tor.active_destinations().contains(c.dst)) {
    return;
  }
  if (host_plane_ && pause_advertised_[static_cast<std::size_t>(c.dst)]) {
    return;  // §3.6.5: withhold data towards a paused receiver
  }
  auto pkt = tor.dequeue_packet(c.dst, config_.piggyback_payload_bytes());
  NEG_ASSERT(pkt.has_value(), "pending queue yielded no packet");
  ++shard.piggyback_packets;
  shard.touched_sources.push_back(c.src);
  shard.deliveries.push_back(DeliveryRecord{pkt->flow, c.dst, pkt->bytes, 0});
}

void NegotiatorFabric::run_predefined_slot_sharded(
    const std::vector<PredefConn>& bucket) {
  // Buckets are sorted by (src, tx); extending shard boundaries to source
  // edges keeps each ToR's switch state inside exactly one worker.
  shard_exec_->partition_by_group(
      static_cast<int>(bucket.size()), shard_ranges_, [&bucket](int i) {
        return bucket[static_cast<std::size_t>(i)].src ==
               bucket[static_cast<std::size_t>(i - 1)].src;
      });
  slot_shards_.resize(static_cast<std::size_t>(shard_exec_->shards()));
  shard_exec_->for_ranges(
      shard_ranges_, [this, &bucket](int s, SlotShardExecutor::Range range) {
        SlotShard& shard = slot_shards_[static_cast<std::size_t>(s)];
        shard.clear();
        for (int i = range.begin; i < range.end; ++i) {
          plan_predefined_conn(bucket[static_cast<std::size_t>(i)], shard);
        }
      });
  // Commit in ascending shard order == ascending (src, tx): every append
  // below lands exactly where the sequential loop would have put it. The
  // deferred activity syncs are an idempotent recompute from queue state,
  // and a predefined slot only drains queues, so replaying them here
  // erases exactly the sources the inline calls would have erased, in the
  // same ascending order.
  for (std::size_t s = 0; s < shard_ranges_.size(); ++s) {
    SlotShard& shard = slot_shards_[s];
    scheduler_->commit_staged(shard.messages);
    piggyback_packets_ += shard.piggyback_packets;
    delivery_build_.insert(delivery_build_.end(), shard.deliveries.begin(),
                           shard.deliveries.end());
    for (const TorId src : shard.touched_sources) sync_source_activity(src);
  }
  ++sharded_slots_;
}

void NegotiatorFabric::run_predefined_slot_dense(int slot) {
  // Unhealthy slot: the fault detector must observe every connection, so
  // resolve the full N×P slot on the fly (this path only runs while links
  // are down or the fault plane is settling).
  const int n = config_.num_tors;
  const int ports = config_.ports_per_tor;
  for (TorId s = 0; s < n; ++s) {
    for (PortId p = 0; p < ports; ++p) {
      const TorId d = schedule_.dst_of(s, p, slot, predef_rotation_);
      if (d == kInvalidTor) continue;
      visit_predefined_conn(resolve_predef_conn(s, p, d), /*healthy=*/false);
    }
  }
}

void NegotiatorFabric::run_predefined_phase() {
  // Stride-17 rotation: with 16 slots per port, a +1 step would keep a
  // pair on the same physical link for 16 consecutive epochs, so a failed
  // link would black the pair out for long stretches. A co-prime stride
  // moves every pair to a different link every epoch (§3.6.1: "a pair of
  // ToRs [exchanges] scheduling messages through multiple port-to-port
  // links ... in subsequent epochs").
  predef_rotation_ =
      config_.rotate_predefined_rule
          ? static_cast<int>((epoch_ * 17) & 0x3fffffff)
          : 0;

  // Gather the epoch's interesting pairs: control messages first, then
  // piggyback-data pairs. Cost is O(messages + active pairs), not O(N^2).
  predef_cursor_ = 0;
  in_predefined_phase_ = true;
  for (auto& bucket : predef_buckets_) bucket.clear();
  for (const auto& [from, to] : scheduler_->epoch_out_pairs()) {
    gather_predefined_pair(from, to);
  }
  if (config_.piggyback) {
    for (const TorId s : active_sources_) {
      const TorSwitch& tor = tors_[static_cast<std::size_t>(s)];
      for (const TorId d : tor.active_destinations()) {
        gather_predefined_pair(s, d);
      }
    }
  }
  if (transport_) {
    // Pairs with retransmit work ride predefined connections even when
    // piggyback is off — a retransmission is owed a slot regardless of
    // how the original unit was transmitted.
    transport_->for_each_retx_pair(
        [this](TorId s, TorId d) { gather_predefined_pair(s, d); });
  }

  for (int slot = 0; slot < timing_.predefined_slots(); ++slot) {
    predef_cursor_ = slot;
    sim_.advance_to(timing_.predefined_slot_start(epoch_, slot));
    const Nanos data_end = timing_.predefined_slot_data_end(epoch_, slot);
    // A slot's link events fired during advance_to, so health is stable
    // within the slot: on an all-up fabric with a quiescent fault plane,
    // per-pair health reads and all-healthy observations are skipped (see
    // FaultPlane::quiescent()).
    const bool healthy = links_.all_up() && faults_.quiescent();
    if (!healthy) {
      run_predefined_slot_dense(slot);
    } else {
      const auto& bucket = predef_buckets_[static_cast<std::size_t>(slot)];
      if (can_shard_slots_ && bucket.size() > 1) {
        run_predefined_slot_sharded(bucket);
      } else {
        for (const PredefConn& c : bucket) {
          visit_predefined_conn(c, /*healthy=*/true);
        }
      }
    }
    // Close the slot: every piggyback delivery staged above shares this
    // arrival time, so the whole slot lands as one span.
    flush_deliveries(data_end + config_.propagation_delay_ns);
  }
  in_predefined_phase_ = false;
}

void NegotiatorFabric::prepare_fallback_epoch() {
  const int ports = config_.ports_per_tor;
  for (const ActiveMatch& a : sched_matches_) {
    fb_tx_stamp_[static_cast<std::size_t>(a.m.src) * ports + a.m.tx_port] =
        epoch_;
    fb_rx_stamp_[static_cast<std::size_t>(a.m.dst) * ports + a.m.rx_port] =
        epoch_;
  }
  // Candidate sources: active (pending direct data) but matched on no tx
  // port for kFallbackStarvationEpochs consecutive epochs. A one-epoch gap
  // is normal stateless-scheduling slack — rescuing it would steal the
  // head-of-line bytes the next epoch's grant is about to carry and waste
  // that grant on a drained queue. Persistent starvation is the control-
  // loss signature the fallback exists for. Ascending, so the per-slot
  // spread order is deterministic.
  fb_sources_.clear();
  for (TorId s = 0; s < config_.num_tors; ++s) {
    bool matched = false;
    for (PortId p = 0; p < ports; ++p) {
      if (fb_tx_stamp_[static_cast<std::size_t>(s) * ports + p] == epoch_) {
        matched = true;
        break;
      }
    }
    auto& starved = fb_starved_[static_cast<std::size_t>(s)];
    if (!matched && active_sources_.contains(s)) {
      ++starved;
    } else {
      starved = 0;
    }
    if (starved >= kFallbackStarvationEpochs) fb_sources_.push_back(s);
  }
}

void NegotiatorFabric::run_fallback_slot() {
  const Bytes payload = config_.scheduled_payload_bytes();
  const int ports = config_.ports_per_tor;
  // The rotor rule for a fixed (slot, rotation) is a port-to-port
  // matching, so fallback senders never collide with each other; the
  // epoch stamps exclude the ports real matches booked.
  const int slot =
      static_cast<int>(sched_slot_counter_ % schedule_.slots());
  const bool healthy = links_.all_up();
  bool sent = false;
  for (const TorId s : fb_sources_) {
    TorSwitch& tor = tors_[static_cast<std::size_t>(s)];
    if (tor.active_destinations().empty()) continue;  // drained mid-phase
    for (PortId p = 0; p < ports; ++p) {
      if (fb_tx_stamp_[static_cast<std::size_t>(s) * ports + p] == epoch_) {
        continue;
      }
      const TorId d = schedule_.dst_of(s, p, slot, predef_rotation_);
      if (d == kInvalidTor) continue;
      const PortId rx =
          rx_port_table_[static_cast<std::size_t>(s) * ports + p];
      if (rx == kInvalidPort) continue;
      if (fb_rx_stamp_[static_cast<std::size_t>(d) * ports + rx] == epoch_) {
        continue;
      }
      if (!tor.active_destinations().contains(d)) continue;
      if (host_plane_ && pause_advertised_[static_cast<std::size_t>(d)]) {
        continue;  // §3.6.5: withhold data towards a paused receiver
      }
      if (!healthy &&
          !(links_.up_raw(links_.raw_index(s, p, LinkDirection::kEgress)) &&
            links_.up_raw(
                links_.raw_index(d, rx, LinkDirection::kIngress)))) {
        continue;
      }
      auto pkt = tor.dequeue_packet(d, payload);
      NEG_ASSERT(pkt.has_value(), "pending queue yielded no packet");
      sync_source_activity(s);
      transmit_direct(static_cast<int>(pkt->flow), s, d, pkt->bytes,
                      sim_.now());
      fallback_bytes_ += pkt->bytes;
      if (resilience_) resilience_->on_fallback_delivery(pkt->bytes);
      sent = true;
    }
  }
  if (sent) {
    ++degraded_slots_;
    if (resilience_) resilience_->on_degraded_slot();
  }
}

void NegotiatorFabric::run_scheduled_slot_sharded() {
  const Bytes payload = config_.scheduled_payload_bytes();
  const bool may_drop = !relay_enabled_;
  // live_matches_ is ascending and sched_matches_ is grouped by source
  // (sched_src_sorted_), so source-edge boundaries keep each ToR's state
  // inside exactly one worker.
  shard_exec_->partition_by_group(
      static_cast<int>(live_matches_.size()), shard_ranges_, [this](int i) {
        const auto& prev = sched_matches_[static_cast<std::size_t>(
            live_matches_[static_cast<std::size_t>(i - 1)])];
        const auto& cur = sched_matches_[static_cast<std::size_t>(
            live_matches_[static_cast<std::size_t>(i)])];
        return cur.m.src == prev.m.src;
      });
  slot_shards_.resize(static_cast<std::size_t>(shard_exec_->shards()));
  shard_exec_->for_ranges(shard_ranges_, [this, payload, may_drop](
                                             int s,
                                             SlotShardExecutor::Range range) {
    // Healthy, channel-free twin of the serial walk below: no per-link
    // health reads, no retransmit branch, no channel fate draws.
    SlotShard& shard = slot_shards_[static_cast<std::size_t>(s)];
    shard.clear();
    for (int r = range.begin; r < range.end; ++r) {
      const std::int32_t index = live_matches_[static_cast<std::size_t>(r)];
      ActiveMatch& a = sched_matches_[static_cast<std::size_t>(index)];
      const Match& m = a.m;
      TorSwitch& tor = tors_[static_cast<std::size_t>(m.src)];
      if (tor.active_destinations().contains(m.dst)) {
        auto pkt = tor.dequeue_packet(m.dst, payload);
        NEG_ASSERT(pkt.has_value(), "pending queue yielded no packet");
        ++shard.match_slots_used;
        shard.touched_sources.push_back(m.src);
        shard.deliveries.push_back(
            DeliveryRecord{pkt->flow, m.dst, pkt->bytes, 0});
        shard.keep.push_back(index);
        continue;
      }
      if (may_drop) {
        // The dropped chain is keyed by m.src, so it is shard-owned; the
        // per-source push order matches the serial walk exactly.
        auto& stamp = dropped_stamp_[static_cast<std::size_t>(m.src)];
        auto& head = dropped_heads_[static_cast<std::size_t>(m.src)];
        if (stamp != epoch_) {
          stamp = epoch_;
          head = -1;
        }
        dropped_next_[static_cast<std::size_t>(index)] = head;
        head = index;
        continue;
      }
      {
        RelayQueueSet& parked = relay_[static_cast<std::size_t>(m.src)];
        if (parked.bytes_for(m.dst) > 0) {
          RelayChunk chunk;
          const std::size_t got =
              parked.dequeue_span(m.dst, payload, 1, &chunk);
          NEG_ASSERT(got == 1, "pending relay yielded no chunk");
          shard.touched_relays.push_back(m.src);
          shard.deliveries.push_back(
              DeliveryRecord{chunk.flow, m.dst, chunk.bytes, chunk.seq});
          shard.keep.push_back(index);
          continue;
        }
      }
      if (m.relay && a.relay_remaining > 0) {
        const Bytes cap = std::min(payload, a.relay_remaining);
        if (auto pkt = tor.dequeue_elephant_packet(m.relay_final_dst, cap)) {
          a.relay_remaining -= pkt->bytes;
          shard.touched_sources.push_back(m.src);
          shard.train_chunks.push_back(RelayTrainChunk{
              m.dst, m.relay_final_dst, pkt->flow, pkt->bytes, 0});
        }
      }
      shard.keep.push_back(index);
    }
  });
  // Commit ascending: the rebuilt live list, the delivery span, the train
  // first-touch order and the activity syncs land exactly as the serial
  // walk would emit them (syncs are idempotent recomputes and scheduled
  // slots only drain queues, so deferring them preserves the final sets
  // and their erase order).
  live_matches_.clear();
  for (std::size_t s = 0; s < shard_ranges_.size(); ++s) {
    SlotShard& shard = slot_shards_[s];
    match_slots_used_ += shard.match_slots_used;
    live_matches_.insert(live_matches_.end(), shard.keep.begin(),
                         shard.keep.end());
    delivery_build_.insert(delivery_build_.end(), shard.deliveries.begin(),
                           shard.deliveries.end());
    for (const RelayTrainChunk& chunk : shard.train_chunks) {
      auto& train =
          train_build_[static_cast<std::size_t>(chunk.intermediate)];
      if (train.empty()) train_touched_.push_back(chunk.intermediate);
      train.push_back(chunk);
    }
    for (const TorId src : shard.touched_sources) sync_source_activity(src);
    for (const TorId t : shard.touched_relays) sync_relay_activity(t);
  }
  ++sharded_slots_;
}

void NegotiatorFabric::run_scheduled_phase() {
  const Bytes payload = config_.scheduled_payload_bytes();
  const Nanos prop = config_.propagation_delay_ns;

  sched_matches_.clear();
  sched_matches_.reserve(scheduler_->matches().size());
  for (const Match& m : scheduler_->matches()) {
    sched_matches_.push_back(ActiveMatch{
        m, m.relay ? m.relay_volume : 0,
        static_cast<std::uint32_t>(
            links_.raw_index(m.src, m.tx_port, LinkDirection::kEgress)),
        static_cast<std::uint32_t>(
            links_.raw_index(m.dst, m.rx_port, LinkDirection::kIngress))});
  }
  total_matches_ += static_cast<std::int64_t>(sched_matches_.size());
  match_slots_offered_ += static_cast<std::int64_t>(sched_matches_.size()) *
                          timing_.scheduled_slots();

  live_matches_.resize(sched_matches_.size());
  for (std::size_t i = 0; i < live_matches_.size(); ++i) {
    live_matches_[i] = static_cast<std::int32_t>(i);
  }
  // Scheduled-slot sharding needs the walk grouped by source, so that
  // source-edge shard boundaries keep each ToR's switch, relay queues and
  // dropped chain inside one worker. live_matches_ stays ascending by
  // construction (the arrival hook reinserts in order), so the property
  // holds for the whole phase iff the scheduler emitted its matches in
  // non-descending src order — checked per epoch, and variant schedulers
  // that interleave sources simply force the serial walk.
  sched_src_sorted_ = can_shard_slots_;
  if (sched_src_sorted_) {
    for (std::size_t i = 1; i < sched_matches_.size(); ++i) {
      if (sched_matches_[i].m.src < sched_matches_[i - 1].m.src) {
        sched_src_sorted_ = false;
        break;
      }
    }
  }
  dropped_next_.assign(sched_matches_.size(), -1);
  // Relay matches (and relay-enabled fabrics generally) are never dropped:
  // parked second-hop data refills without a flow arrival, so the
  // reactivation hook would miss them.
  const bool may_drop = !relay_enabled_;
  in_scheduled_phase_ = true;

  const bool fallback =
      control_ != nullptr && config_.control_fault.fallback;
  if (fallback) prepare_fallback_epoch();

  for (int slot = 0; slot < timing_.scheduled_slots(); ++slot) {
    sim_.advance_to(timing_.scheduled_slot_start(epoch_, slot));
    const Nanos arrival = timing_.scheduled_slot_end(epoch_, slot) + prop;
    const bool healthy = links_.all_up();
    if (healthy && sched_src_sorted_ && live_matches_.size() > 1) {
      // can_shard_slots_ is folded into sched_src_sorted_; fallback
      // requires a control channel, which can_shard_slots_ excludes.
      run_scheduled_slot_sharded();
      flush_deliveries(arrival);
      ship_relay_trains(arrival);
      continue;
    }
    std::size_t keep = 0;
    for (std::size_t r = 0; r < live_matches_.size(); ++r) {
      const std::int32_t index = live_matches_[r];
      ActiveMatch& a = sched_matches_[static_cast<std::size_t>(index)];
      const Match& m = a.m;
      TorSwitch& tor = tors_[static_cast<std::size_t>(m.src)];
      if (!healthy &&
          !(links_.up_raw(a.tx_link) && links_.up_raw(a.rx_link))) {
        live_matches_[keep++] = index;
        continue;
      }
      // 0. A pending retransmission for the matched pair outranks fresh
      // data (selective repeat: the lost unit is the pair's oldest debt).
      // The match stays live — its queue state is unchanged.
      if (transport_ && try_retransmit(m.src, m.dst, sim_.now())) {
        ++match_slots_used_;
        live_matches_[keep++] = index;
        continue;
      }
      // 1. Direct data for the matched destination. The pending check is a
      // plain counter read — most slots of an over-scheduled match find a
      // drained queue (§3.5); such matches are dropped from the live list
      // until an arrival for their pair reactivates them.
      if (tor.active_destinations().contains(m.dst)) {
        auto pkt = tor.dequeue_packet(m.dst, payload);
        NEG_ASSERT(pkt.has_value(), "pending queue yielded no packet");
        ++match_slots_used_;
        sync_source_activity(m.src);
        transmit_direct(static_cast<int>(pkt->flow), m.src, m.dst,
                        pkt->bytes, sim_.now());
        live_matches_[keep++] = index;
        continue;
      }
      if (may_drop) {
        // Park the match on its source's dropped chain; the arrival hook
        // restores it (at its original position) if the pair refills.
        auto& stamp = dropped_stamp_[static_cast<std::size_t>(m.src)];
        auto& head = dropped_heads_[static_cast<std::size_t>(m.src)];
        if (stamp != epoch_) {
          stamp = epoch_;
          head = -1;
        }
        dropped_next_[static_cast<std::size_t>(index)] = head;
        head = index;
        continue;
      }
      // 2. Second-hop relayed data parked at this ToR for the destination.
      // The span dequeue keeps the relay queue live (same-slot reads see
      // the drain) while the delivery effects ride the slot's span.
      {
        RelayQueueSet& parked = relay_[static_cast<std::size_t>(m.src)];
        if (parked.bytes_for(m.dst) > 0) {
          RelayChunk chunk;
          const std::size_t got =
              parked.dequeue_span(m.dst, payload, 1, &chunk);
          NEG_ASSERT(got == 1, "pending relay yielded no chunk");
          sync_relay_activity(m.src);
          bool deliver = true;
          if (data_) {
            deliver =
                data_->classify(DataHopClass::kSecondHop, chunk.bytes)
                    .deliver;
          }
          if (deliver) {
            stage_delivery(static_cast<int>(chunk.flow), m.dst, chunk.bytes,
                           chunk.seq);
          }
          live_matches_[keep++] = index;
          continue;
        }
      }
      // 3. First-hop relay: push elephant bytes towards the intermediate.
      if (m.relay && a.relay_remaining > 0) {
        const Bytes cap = std::min(payload, a.relay_remaining);
        if (auto pkt = tor.dequeue_elephant_packet(m.relay_final_dst, cap)) {
          a.relay_remaining -= pkt->bytes;
          sync_source_activity(m.src);
          // The ARQ unit is the elephant chunk itself; a retransmission
          // after a loss on either VLB leg goes direct (first-hop) to the
          // final destination, never back through a relay queue.
          std::uint32_t seq = 0;
          if (transport_) {
            seq = transport_->on_transmit(static_cast<std::int32_t>(
                                              pkt->flow),
                                          m.src, m.relay_final_dst,
                                          pkt->bytes, sim_.now());
          }
          bool deliver = true;
          if (data_) {
            deliver =
                data_->classify(DataHopClass::kRelay, pkt->bytes).deliver;
          }
          if (deliver) {
            if (data_) transit_bytes_ += pkt->bytes;
            // Batched data plane: the chunk joins this slot's train
            // towards the intermediate m.dst; the train ships once when
            // the slot closes (same arrival time, same per-chunk order at
            // the receiver's FIFO as the per-chunk events it replaces).
            auto& train = train_build_[static_cast<std::size_t>(m.dst)];
            if (train.empty()) train_touched_.push_back(m.dst);
            train.push_back(RelayTrainChunk{m.dst, m.relay_final_dst,
                                            pkt->flow, pkt->bytes, seq});
          }
        }
      }
      // Otherwise the link idles this slot: the cost of stateless
      // scheduling when the queue emptied before the accept (§3.5).
      live_matches_[keep++] = index;
    }
    live_matches_.resize(keep);
    // Graceful degradation: unmatched sources spread via the rotor rule
    // after the matched traffic of the slot, sharing its delivery span.
    if (fallback) {
      run_fallback_slot();
      ++sched_slot_counter_;
    }
    // Close the slot: deliveries flush first (the goodput meter books
    // delivered bytes before relay receptions, matching the per-packet
    // order the span replaces), then one train event per intermediate.
    flush_deliveries(arrival);
    ship_relay_trains(arrival);
  }
  in_scheduled_phase_ = false;
}

void NegotiatorFabric::ship_relay_trains(Nanos arrival) {
  for (const TorId inter : train_touched_) {
    auto& train = train_build_[static_cast<std::size_t>(inter)];
    goodput_.record_relay_train(inter, train.data(), train.size(), arrival);
    sim_.events().schedule_relay_train(
        arrival, train.data(), static_cast<std::uint32_t>(train.size()));
    train.clear();
  }
  train_touched_.clear();
}

Bytes NegotiatorFabric::total_backlog() const {
  Bytes total = 0;
  for (const TorSwitch& t : tors_) total += t.total_pending();
  for (const RelayQueueSet& r : relay_) total += r.total_bytes();
  // Every ARQ unit between first transmit and first arrival — in flight,
  // dropped and awaiting its RTO, or queued for a retransmit slot — is
  // backlog the fabric still owes service to: drain loops must keep
  // simulated time moving until the pending timers fire and the
  // retransmissions land. (Chunks parked at a relay are counted by the
  // relay sum too; the overlap is harmless for a drain signal.)
  if (transport_) total += transport_->unresolved_bytes();
  return total;
}

// DemandView --------------------------------------------------------------

Bytes NegotiatorFabric::pending_bytes(TorId src, TorId dst) const {
  return tors_[static_cast<std::size_t>(src)].pending_to(dst);
}

Bytes NegotiatorFabric::elephant_bytes(TorId src, TorId dst) const {
  const TorSwitch& tor = tors_[static_cast<std::size_t>(src)];
  return tor.bytes_at_level(dst, tor.levels() - 1);
}

Nanos NegotiatorFabric::weighted_hol_delay(TorId src, TorId dst, Nanos now,
                                           double alpha) const {
  return tors_[static_cast<std::size_t>(src)].weighted_hol_delay(dst, now,
                                                                 alpha);
}

Nanos NegotiatorFabric::oldest_hol_enqueue(TorId src, TorId dst) const {
  return tors_[static_cast<std::size_t>(src)].oldest_hol_enqueue(dst);
}

Bytes NegotiatorFabric::cumulative_arrived(TorId src, TorId dst) const {
  return arrived_[static_cast<std::size_t>(src) * config_.num_tors + dst];
}

Bytes NegotiatorFabric::relay_pending(TorId tor, TorId final_dst) const {
  if (!relay_enabled_) return 0;
  return relay_[static_cast<std::size_t>(tor)].bytes_for(final_dst);
}

Bytes NegotiatorFabric::relay_queue_total(TorId tor) const {
  if (!relay_enabled_) return 0;
  return relay_[static_cast<std::size_t>(tor)].total_bytes();
}

const ActiveSet& NegotiatorFabric::relay_active_destinations(
    TorId tor) const {
  // Const magic static: concurrent first calls from shard workers are safe.
  static const ActiveSet kEmpty;
  if (!relay_enabled_) return kEmpty;
  return relay_[static_cast<std::size_t>(tor)].active_destinations();
}

const ActiveSet& NegotiatorFabric::relay_active_sources() const {
  return relay_active_;
}

const ActiveSet& NegotiatorFabric::active_destinations(TorId src) const {
  return tors_[static_cast<std::size_t>(src)].active_destinations();
}

const ActiveSet& NegotiatorFabric::active_sources() const {
  return active_sources_;
}

bool NegotiatorFabric::rx_paused(TorId tor) const {
  // Grant-time gating uses the destination's own (current) buffer state —
  // the pause decision is local to the destination ToR.
  if (!host_plane_) return false;
  return host_plane_->rx_paused(tor, sim_.now());
}

// ------------------------------------------------------------- make_fabric

std::unique_ptr<FabricSim> make_fabric(const NetworkConfig& config,
                                       Nanos stats_window_ns) {
  config.validate();
  if (config.scheduler == SchedulerKind::kOblivious) {
    return std::make_unique<ObliviousFabric>(config, stats_window_ns);
  }
  return std::make_unique<NegotiatorFabric>(config, stats_window_ns);
}

}  // namespace negotiator
