// Percentile helpers (nearest-rank on a sorted copy).
#pragma once

#include <vector>

namespace negotiator {

/// p in [0, 100]. Empty input returns 0. Nearest-rank method.
double percentile(std::vector<double> values, double p);

/// Arithmetic mean; empty input returns 0.
double mean(const std::vector<double>& values);

}  // namespace negotiator
