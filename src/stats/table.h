// Console table printer used by the benchmark harnesses to print
// paper-style rows with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace negotiator {

class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with padded columns and a header separator.
  std::string to_string() const;
  void print() const;

  /// Formats a double with `precision` decimals.
  static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace negotiator
