// Fixed-window time-series accumulator (micro-observation figures).
#pragma once

#include <vector>

#include "common/types.h"

namespace negotiator {

class TimeSeries {
 public:
  explicit TimeSeries(Nanos window_ns);

  void add(Nanos when, double value);

  Nanos window_ns() const { return window_ns_; }
  std::size_t windows() const { return sums_.size(); }
  double sum_at(std::size_t window) const;
  /// Sum divided by window length — e.g. bytes/ns when values are bytes.
  double rate_at(std::size_t window) const;

 private:
  Nanos window_ns_;
  std::vector<double> sums_;
};

}  // namespace negotiator
