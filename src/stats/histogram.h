// Empirical CDF over recorded samples (Fig. 6 style outputs).
#pragma once

#include <vector>

namespace negotiator {

class EmpiricalCdf {
 public:
  void add(double value) { values_.push_back(value); }
  std::size_t count() const { return values_.size(); }

  struct Point {
    double value;
    double cdf;
  };

  /// `resolution` evenly spaced CDF points over the sample range (sorted).
  /// Empty when no samples.
  std::vector<Point> points(int resolution = 100) const;

  /// Fraction of samples <= threshold.
  double fraction_below(double threshold) const;

 private:
  std::vector<double> values_;
};

}  // namespace negotiator
