#include "stats/histogram.h"

#include <algorithm>

namespace negotiator {

std::vector<EmpiricalCdf::Point> EmpiricalCdf::points(int resolution) const {
  std::vector<Point> out;
  if (values_.empty() || resolution <= 0) return out;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  out.reserve(static_cast<std::size_t>(resolution));
  const auto n = sorted.size();
  for (int i = 1; i <= resolution; ++i) {
    const double q = static_cast<double>(i) / resolution;
    const auto idx = std::min(
        n - 1, static_cast<std::size_t>(q * static_cast<double>(n)) -
                   (q >= 1.0 ? 1 : 0));
    out.push_back(Point{sorted[idx], q});
  }
  return out;
}

double EmpiricalCdf::fraction_below(double threshold) const {
  if (values_.empty()) return 0.0;
  std::size_t below = 0;
  for (double v : values_) {
    if (v <= threshold) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(values_.size());
}

}  // namespace negotiator
