#include "stats/table.h"

#include <cstdio>
#include <sstream>

#include "common/assert.h"

namespace negotiator {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NEG_ASSERT(!headers_.empty(), "table needs headers");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  NEG_ASSERT(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string ConsoleTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void ConsoleTable::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace negotiator
