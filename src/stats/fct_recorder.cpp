#include "stats/fct_recorder.h"

#include <algorithm>

#include "stats/percentile.h"

namespace negotiator {

void FctRecorder::record(const FctSample& sample) {
  samples_.push_back(sample);
}

std::vector<double> FctRecorder::mice_fcts(int group) const {
  std::vector<double> out;
  for (const FctSample& s : samples_) {
    if (s.arrival < measure_from_) continue;
    if (s.size >= kMiceFlowBytes) continue;
    if (group >= 0 && s.group != group) continue;
    out.push_back(static_cast<double>(s.fct));
  }
  return out;
}

FctSummary FctRecorder::summarize(bool mice_only, int group) const {
  std::vector<double> fcts;
  for (const FctSample& s : samples_) {
    if (s.arrival < measure_from_) continue;
    if (mice_only && s.size >= kMiceFlowBytes) continue;
    if (group >= 0 && s.group != group) continue;
    fcts.push_back(static_cast<double>(s.fct));
  }
  FctSummary out;
  out.count = fcts.size();
  if (fcts.empty()) return out;
  out.mean_ns = mean(fcts);
  out.p50_ns = percentile(fcts, 50.0);
  out.p99_ns = percentile(fcts, 99.0);
  out.max_ns = *std::max_element(fcts.begin(), fcts.end());
  return out;
}

FctSummary FctRecorder::mice_summary(int group) const {
  return summarize(/*mice_only=*/true, group);
}

FctSummary FctRecorder::all_summary(int group) const {
  return summarize(/*mice_only=*/false, group);
}

}  // namespace negotiator
