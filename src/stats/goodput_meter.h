// Goodput accounting. Counts payload bytes delivered to their final
// destination ToR; relay (first-hop) bytes are tracked separately — they
// consume receiver bandwidth but are not goodput (§4.2, Fig. 18).
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "common/units.h"

namespace negotiator {

class GoodputMeter {
 public:
  GoodputMeter(int num_tors, Nanos window_ns = 0);

  /// Final-destination delivery of `bytes` payload at `when` into `dst`.
  /// Inline: the fabric calls this once per delivered packet.
  void record_delivery(TorId dst, Bytes bytes, Nanos when) {
    NEG_ASSERT(bytes >= 0, "negative delivery");
    if (when >= measure_from_ && when < measure_to_) delivered_ += bytes;
    if (window_ns_ > 0) {
      bump_series(per_tor_windows_[static_cast<std::size_t>(dst)], bytes,
                  when);
    }
  }

  /// First-hop (relay) reception at an intermediate ToR.
  void record_relay_reception(TorId intermediate, Bytes bytes, Nanos when) {
    if (when >= measure_from_ && when < measure_to_) relay_ += bytes;
    if (window_ns_ > 0) {
      bump_series(
          per_tor_relay_windows_[static_cast<std::size_t>(intermediate)],
          bytes, when);
    }
  }

  /// Span form of record_delivery for one slot's coalesced delivery walk:
  /// every record shares the span's arrival time `when`, so the measure-
  /// interval check runs once and the per-ToR window series take one
  /// per-destination delta each instead of one bump per packet. Identical
  /// arithmetic to n per-record calls (integer byte sums commute).
  void record_delivery_span(const DeliveryRecord* records, std::size_t n,
                            Nanos when) {
    Bytes total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      NEG_ASSERT(records[i].bytes >= 0, "negative delivery");
      total += records[i].bytes;
    }
    if (when >= measure_from_ && when < measure_to_) delivered_ += total;
    if (window_ns_ > 0 && n > 0) {
      // Per-destination coalescing through a scratch accumulator: records
      // for the same ToR may interleave arbitrarily in dequeue order.
      for (std::size_t i = 0; i < n; ++i) {
        auto& acc = span_accum_[static_cast<std::size_t>(records[i].dst)];
        if (acc == 0) span_touched_.push_back(records[i].dst);
        acc += records[i].bytes;
      }
      for (const TorId dst : span_touched_) {
        auto& acc = span_accum_[static_cast<std::size_t>(dst)];
        bump_series(per_tor_windows_[static_cast<std::size_t>(dst)], acc,
                    when);
        acc = 0;
      }
      span_touched_.clear();
    }
  }

  /// Span form of record_relay_reception for one assembled chunk train:
  /// every chunk shares the train's reception time, so the meter ingests
  /// the span as a single byte total (identical arithmetic to n per-chunk
  /// calls — same measure-interval check, same window bucket).
  void record_relay_train(TorId intermediate, const RelayTrainChunk* chunks,
                          std::size_t n, Nanos when) {
    Bytes total = 0;
    for (std::size_t i = 0; i < n; ++i) total += chunks[i].bytes;
    record_relay_reception(intermediate, total, when);
  }

  void set_measure_interval(Nanos from, Nanos to);

  Bytes delivered_bytes() const { return delivered_; }
  Bytes relay_bytes() const { return relay_; }

  /// Average goodput normalized to `host_rate` per ToR over the measure
  /// interval: delivered / (N * host_rate * duration).
  double normalized_goodput(Rate host_rate) const;

  /// Delivered bytes per window per ToR (only when window_ns > 0); index =
  /// window number.
  const std::vector<Bytes>& tor_window_series(TorId dst) const;
  const std::vector<Bytes>& tor_relay_window_series(TorId dst) const;
  Nanos window_ns() const { return window_ns_; }

 private:
  void bump_series(std::vector<Bytes>& series, Bytes bytes, Nanos when);

  int num_tors_;
  Nanos window_ns_;
  Nanos measure_from_{0};
  Nanos measure_to_{kNeverNs};
  Bytes delivered_{0};
  Bytes relay_{0};
  std::vector<std::vector<Bytes>> per_tor_windows_;
  std::vector<std::vector<Bytes>> per_tor_relay_windows_;
  // Scratch for record_delivery_span's per-destination coalescing (sized
  // num_tors when the window series are enabled; zeroed between spans).
  std::vector<Bytes> span_accum_;
  std::vector<TorId> span_touched_;
};

}  // namespace negotiator
