#include "stats/timeseries.h"

#include "common/assert.h"

namespace negotiator {

TimeSeries::TimeSeries(Nanos window_ns) : window_ns_(window_ns) {
  NEG_ASSERT(window_ns > 0, "window must be positive");
}

void TimeSeries::add(Nanos when, double value) {
  NEG_ASSERT(when >= 0, "negative timestamp");
  const auto w = static_cast<std::size_t>(when / window_ns_);
  if (sums_.size() <= w) sums_.resize(w + 1, 0.0);
  sums_[w] += value;
}

double TimeSeries::sum_at(std::size_t window) const {
  return window < sums_.size() ? sums_[window] : 0.0;
}

double TimeSeries::rate_at(std::size_t window) const {
  return sum_at(window) / static_cast<double>(window_ns_);
}

}  // namespace negotiator
