#include "stats/goodput_meter.h"

#include "common/assert.h"

namespace negotiator {

GoodputMeter::GoodputMeter(int num_tors, Nanos window_ns)
    : num_tors_(num_tors), window_ns_(window_ns) {
  NEG_ASSERT(num_tors >= 1, "need >= 1 ToR");
  NEG_ASSERT(window_ns >= 0, "window must be >= 0");
  if (window_ns_ > 0) {
    per_tor_windows_.resize(static_cast<std::size_t>(num_tors));
    per_tor_relay_windows_.resize(static_cast<std::size_t>(num_tors));
    span_accum_.assign(static_cast<std::size_t>(num_tors), 0);
  }
}

void GoodputMeter::set_measure_interval(Nanos from, Nanos to) {
  NEG_ASSERT(from >= 0 && to > from, "bad measure interval");
  measure_from_ = from;
  measure_to_ = to;
}

void GoodputMeter::bump_series(std::vector<Bytes>& series, Bytes bytes,
                               Nanos when) {
  const auto w = static_cast<std::size_t>(when / window_ns_);
  if (series.size() <= w) series.resize(w + 1, 0);
  series[w] += bytes;
}

double GoodputMeter::normalized_goodput(Rate host_rate) const {
  const Nanos to = measure_to_ == kNeverNs ? 0 : measure_to_;
  const Nanos duration = to - measure_from_;
  if (duration <= 0) return 0.0;
  const double capacity = host_rate.bytes_per_ns *
                          static_cast<double>(duration) * num_tors_;
  return static_cast<double>(delivered_) / capacity;
}

const std::vector<Bytes>& GoodputMeter::tor_window_series(TorId dst) const {
  NEG_ASSERT(window_ns_ > 0, "window series not enabled");
  return per_tor_windows_[static_cast<std::size_t>(dst)];
}

const std::vector<Bytes>& GoodputMeter::tor_relay_window_series(
    TorId dst) const {
  NEG_ASSERT(window_ns_ > 0, "window series not enabled");
  return per_tor_relay_windows_[static_cast<std::size_t>(dst)];
}

}  // namespace negotiator
