#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace negotiator {

double percentile(std::vector<double> values, double p) {
  NEG_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (values.empty()) return 0.0;
  const auto n = values.size();
  const double raw = std::ceil(p / 100.0 * static_cast<double>(n)) - 1.0;
  const double clamped =
      std::clamp(raw, 0.0, static_cast<double>(n) - 1.0);
  const auto safe_rank = static_cast<std::size_t>(clamped);
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(safe_rank),
                   values.end());
  return values[safe_rank];
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

}  // namespace negotiator
