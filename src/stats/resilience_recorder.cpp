#include "stats/resilience_recorder.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace negotiator {

ResilienceRecorder::ResilienceRecorder(int num_tors, int ports_per_tor)
    : num_tors_(num_tors),
      ports_(ports_per_tor),
      links_(static_cast<std::size_t>(2 * num_tors * ports_per_tor)) {
  NEG_ASSERT(num_tors >= 1 && ports_per_tor >= 1, "bad recorder shape");
}

std::size_t ResilienceRecorder::index(TorId tor, PortId port,
                                      LinkDirection dir) const {
  NEG_ASSERT(tor >= 0 && tor < num_tors_ && port >= 0 && port < ports_,
             "link address out of range");
  const std::size_t base =
      (static_cast<std::size_t>(tor) * ports_ + port) * 2;
  return base + (dir == LinkDirection::kIngress ? 1 : 0);
}

void ResilienceRecorder::on_link_toggle(Nanos now, TorId tor, PortId port,
                                        LinkDirection dir, bool fail) {
  DirState& s = links_[index(tor, port, dir)];
  if (fail) {
    s.last_fail = now;
    ++failures_;
  } else {
    s.last_repair = now;
    ++repairs_;
  }
}

void ResilienceRecorder::on_exclude(Nanos now, TorId tor, PortId port,
                                    LinkDirection dir) {
  ++exclusions_;
  const DirState& s = links_[index(tor, port, dir)];
  // A spurious exclusion (no recorded failure) yields no latency sample.
  if (s.last_fail == kNeverNs || now < s.last_fail) return;
  const Nanos latency = now - s.last_fail;
  ++detection_.count;
  detection_.sum += latency;
  detection_.max = std::max(detection_.max, latency);
}

void ResilienceRecorder::on_include(Nanos now, TorId tor, PortId port,
                                    LinkDirection dir) {
  ++inclusions_;
  const DirState& s = links_[index(tor, port, dir)];
  if (s.last_repair == kNeverNs || now < s.last_repair) return;
  const Nanos latency = now - s.last_repair;
  ++recovery_.count;
  recovery_.sum += latency;
  recovery_.max = std::max(recovery_.max, latency);
}

std::string ResilienceRecorder::json() const {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\": %d, "
      "\"failures\": %lld, \"repairs\": %lld, \"exclusions\": %lld, "
      "\"inclusions\": %lld, \"exclusion_churn\": %lld, "
      "\"detection_ns\": {\"count\": %lld, \"mean\": %.1f, \"max\": %lld}, "
      "\"recovery_ns\": {\"count\": %lld, \"mean\": %.1f, \"max\": %lld}, "
      "\"blackholed_bytes\": %lld, \"degraded_delivered_bytes\": %lld, "
      "\"control_dropped\": %lld, \"control_delayed\": %lld, "
      "\"control_duplicated\": %lld, \"degraded_slots\": %lld, "
      "\"fallback_bytes\": %lld, \"control_grants\": %lld, "
      "\"control_accepts\": %lld, \"control_match_ratio\": %.4f, "
      "\"data_dropped\": %lld, \"data_corrupted\": %lld, "
      "\"data_dropped_bytes\": %lld, \"data_corrupted_bytes\": %lld, "
      "\"retransmitted_bytes\": %lld, \"spurious_retx\": %lld, "
      "\"rto_fires\": %lld, \"max_backoff_reached\": %lld}",
      kSchemaVersion, static_cast<long long>(failures_),
      static_cast<long long>(repairs_), static_cast<long long>(exclusions_),
      static_cast<long long>(inclusions_),
      static_cast<long long>(exclusion_churn()),
      static_cast<long long>(detection_.count), detection_.mean(),
      static_cast<long long>(detection_.max),
      static_cast<long long>(recovery_.count), recovery_.mean(),
      static_cast<long long>(recovery_.max),
      static_cast<long long>(blackholed_bytes_),
      static_cast<long long>(degraded_delivered_bytes_),
      static_cast<long long>(control_dropped_),
      static_cast<long long>(control_delayed_),
      static_cast<long long>(control_duplicated_),
      static_cast<long long>(degraded_slots_),
      static_cast<long long>(fallback_bytes_),
      static_cast<long long>(control_grants_),
      static_cast<long long>(control_accepts_), control_match_ratio(),
      static_cast<long long>(data_dropped_),
      static_cast<long long>(data_corrupted_),
      static_cast<long long>(data_dropped_bytes_),
      static_cast<long long>(data_corrupted_bytes_),
      static_cast<long long>(retransmitted_bytes_),
      static_cast<long long>(spurious_retx_),
      static_cast<long long>(rto_fires_),
      static_cast<long long>(max_backoff_reached_));
  return std::string(buf);
}

}  // namespace negotiator
