// Resilience-metrics plane: quantifies how the fabric rides out a fault
// scenario (engine/fault_scenario.h).
//
// A recorder is attached to a fabric with FabricSim::set_resilience and
// then fed from three places:
//   - the fabric's link-toggle handler (injection / repair timestamps per
//     directed link),
//   - FaultPlane::end_epoch via the Listener interface (confirmed
//     exclusion / re-inclusion transitions), and
//   - the data plane (bytes transmitted into dark fibre before detection,
//     bytes delivered while some link was down).
//
// Derived metrics:
//   - detection latency  = exclusion confirmed − most recent failure of
//     that directed link (how long the FaultPlane took to stop using it);
//   - recovery latency   = re-inclusion confirmed − most recent repair
//     (how long a healed link waits before carrying traffic again);
//   - exclusion churn    = total exclusions + re-inclusions (a flapping
//     plane excludes and re-includes the same port repeatedly);
//   - blackholed bytes   = transmitted into a dark, not-yet-excluded link
//     and bounced back to the queue head (wasted slots, §3.6.1);
//   - degraded delivered bytes = delivered while failed_count() > 0 (the
//     traffic the fabric routed around the outage).
//
// Determinism: the recorder only aggregates integer event data already on
// the simulation timeline, so its numbers are bit-identical for a fixed
// seed. A null recorder (the default) leaves every fabric hot path
// untouched — goldens and bench stdouts are byte-identical with no
// recorder attached.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/fault_detector.h"

namespace negotiator {

class ResilienceRecorder final : public FaultPlane::Listener {
 public:
  ResilienceRecorder(int num_tors, int ports_per_tor);

  /// Fabric link-toggle hook (call after LinkState is updated).
  void on_link_toggle(Nanos now, TorId tor, PortId port, LinkDirection dir,
                      bool fail);

  // FaultPlane::Listener:
  void on_exclude(Nanos now, TorId tor, PortId port,
                  LinkDirection dir) override;
  void on_include(Nanos now, TorId tor, PortId port,
                  LinkDirection dir) override;

  /// Bytes transmitted into a dark, not-yet-excluded link (wasted slot).
  void on_blackholed(Bytes bytes) { blackholed_bytes_ += bytes; }

  /// Bytes delivered while at least one link in the fabric was down.
  void on_degraded_delivery(Bytes bytes) {
    degraded_delivered_bytes_ += bytes;
  }

  // Control-plane fault hooks (core/control_channel.h + the fallback path
  // in engine/network.cpp). All incremental; zero-cost when the lossy
  // channel is absent because nothing calls them.
  void on_control_dropped() { ++control_dropped_; }
  void on_control_delayed() { ++control_delayed_; }
  void on_control_duplicated() { ++control_duplicated_; }
  /// A scheduled slot in which at least one unmatched source delivered via
  /// the oblivious fallback.
  void on_degraded_slot() { ++degraded_slots_; }
  /// Bytes delivered through the fallback (rotor) path.
  void on_fallback_delivery(Bytes bytes) { fallback_bytes_ += bytes; }
  /// Per-epoch matching outcome under loss: `grants` issued in epoch e-1,
  /// `accepts` that answered them in epoch e (Fig. 14 semantics).
  void on_control_match(std::size_t grants, std::size_t accepts) {
    control_grants_ += static_cast<std::int64_t>(grants);
    control_accepts_ += static_cast<std::int64_t>(accepts);
  }

  // Data-plane fault hooks (core/data_channel.h + tor/host_transport.h).
  // Same contract as the control hooks: incremental, and zero-cost when
  // the lossy data plane is absent because nothing calls them.
  void on_data_dropped(Bytes bytes) {
    ++data_dropped_;
    data_dropped_bytes_ += bytes;
  }
  void on_data_corrupted(Bytes bytes) {
    ++data_corrupted_;
    data_corrupted_bytes_ += bytes;
  }
  /// One chunk handed back to the fabric for retransmission.
  void on_retransmit(Bytes bytes) { retransmitted_bytes_ += bytes; }
  /// A retransmitted copy arrived for a chunk the receiver already had.
  void on_spurious_retx() { ++spurious_retx_; }
  /// One genuine RTO expiry (stale timer wakeups are not counted).
  void on_rto_fire() { ++rto_fires_; }
  /// An RTO expiry found the flow already at its backoff cap.
  void on_max_backoff() { ++max_backoff_reached_; }

  struct LatencyStats {
    std::int64_t count{0};
    Nanos sum{0};
    Nanos max{0};
    double mean() const {
      return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                       : 0.0;
    }
  };

  std::int64_t failures() const { return failures_; }
  std::int64_t repairs() const { return repairs_; }
  std::int64_t exclusions() const { return exclusions_; }
  std::int64_t inclusions() const { return inclusions_; }
  /// Exclusions + re-inclusions: how much the exclusion set thrashed.
  std::int64_t exclusion_churn() const { return exclusions_ + inclusions_; }
  const LatencyStats& detection() const { return detection_; }
  const LatencyStats& recovery() const { return recovery_; }
  Bytes blackholed_bytes() const { return blackholed_bytes_; }
  Bytes degraded_delivered_bytes() const { return degraded_delivered_bytes_; }

  std::int64_t control_dropped() const { return control_dropped_; }
  std::int64_t control_delayed() const { return control_delayed_; }
  std::int64_t control_duplicated() const { return control_duplicated_; }
  std::int64_t degraded_slots() const { return degraded_slots_; }
  Bytes fallback_bytes() const { return fallback_bytes_; }
  std::int64_t control_grants() const { return control_grants_; }
  std::int64_t control_accepts() const { return control_accepts_; }
  /// Accepts / grants over the run under loss (0 when no grant was seen).
  double control_match_ratio() const {
    return control_grants_ > 0 ? static_cast<double>(control_accepts_) /
                                     static_cast<double>(control_grants_)
                               : 0.0;
  }

  std::int64_t data_dropped() const { return data_dropped_; }
  std::int64_t data_corrupted() const { return data_corrupted_; }
  Bytes data_dropped_bytes() const { return data_dropped_bytes_; }
  Bytes data_corrupted_bytes() const { return data_corrupted_bytes_; }
  Bytes retransmitted_bytes() const { return retransmitted_bytes_; }
  std::int64_t spurious_retx() const { return spurious_retx_; }
  std::int64_t rto_fires() const { return rto_fires_; }
  std::int64_t max_backoff_reached() const { return max_backoff_reached_; }

  /// Version of the json() schema below. Bump whenever a field is added,
  /// removed, or reordered so nightly chaos-JSON diffs can tell a schema
  /// change from a metrics change.
  static constexpr int kSchemaVersion = 2;

  /// One-line JSON object with the full metrics schema (see README
  /// "Fault model" for field meanings). Field order is fixed — the
  /// emission is a single snprintf, so it cannot vary across compilers —
  /// and `schema_version` leads the object.
  std::string json() const;

 private:
  struct DirState {
    Nanos last_fail{kNeverNs};
    Nanos last_repair{kNeverNs};
  };
  std::size_t index(TorId tor, PortId port, LinkDirection dir) const;

  int num_tors_;
  int ports_;
  std::vector<DirState> links_;  // [((tor·P)+port)·2 + ingress?1:0]
  std::int64_t failures_{0};
  std::int64_t repairs_{0};
  std::int64_t exclusions_{0};
  std::int64_t inclusions_{0};
  LatencyStats detection_;
  LatencyStats recovery_;
  Bytes blackholed_bytes_{0};
  Bytes degraded_delivered_bytes_{0};
  std::int64_t control_dropped_{0};
  std::int64_t control_delayed_{0};
  std::int64_t control_duplicated_{0};
  std::int64_t degraded_slots_{0};
  Bytes fallback_bytes_{0};
  std::int64_t control_grants_{0};
  std::int64_t control_accepts_{0};
  std::int64_t data_dropped_{0};
  std::int64_t data_corrupted_{0};
  Bytes data_dropped_bytes_{0};
  Bytes data_corrupted_bytes_{0};
  Bytes retransmitted_bytes_{0};
  std::int64_t spurious_retx_{0};
  std::int64_t rto_fires_{0};
  std::int64_t max_backoff_reached_{0};
};

}  // namespace negotiator
