// CSV writer so benchmark outputs can be re-plotted outside the repo.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace negotiator {

class CsvWriter {
 public:
  /// Opens `path` and writes the header row. Throws std::runtime_error on
  /// failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace negotiator
