#include "stats/csv.h"

#include <stdexcept>

#include "common/assert.h"

namespace negotiator {
namespace {

void write_row(std::ofstream& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out << ',';
    out << cells[i];
  }
  out << '\n';
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(out_, header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  NEG_ASSERT(cells.size() == columns_, "CSV row width mismatch");
  write_row(out_, cells);
}

}  // namespace negotiator
