// Flow-completion-time bookkeeping, ToR-to-ToR (§4.1).
#pragma once

#include <vector>

#include "common/types.h"
#include "workload/flow.h"

namespace negotiator {

struct FctSample {
  FlowId flow;
  Bytes size;
  Nanos arrival;
  Nanos fct;  // finish - arrival
  int group;
};

struct FctSummary {
  std::size_t count{0};
  double p99_ns{0.0};
  double p50_ns{0.0};
  double mean_ns{0.0};
  double max_ns{0.0};
};

class FctRecorder {
 public:
  void record(const FctSample& sample);

  /// Bulk completion path: appends `n` samples in order, exactly as `n`
  /// record() calls would, with a single reservation. FlowTable::credit_span
  /// lands a slot's completed flows here in one call.
  void record_span(const FctSample* samples, std::size_t n) {
    samples_.insert(samples_.end(), samples, samples + n);
  }

  /// Only flows with arrival >= `measure_from` are included in summaries;
  /// earlier flows count as warm-up.
  void set_measure_from(Nanos t) { measure_from_ = t; }

  std::size_t completed() const { return samples_.size(); }

  /// Summary over mice flows (< kMiceFlowBytes), optionally one group only
  /// (group < 0 means all groups).
  FctSummary mice_summary(int group = -1) const;
  /// Summary over all flows.
  FctSummary all_summary(int group = -1) const;

  /// Raw mice FCTs in ns, for CDFs.
  std::vector<double> mice_fcts(int group = -1) const;

  const std::vector<FctSample>& samples() const { return samples_; }

 private:
  FctSummary summarize(bool mice_only, int group) const;

  std::vector<FctSample> samples_;
  Nanos measure_from_{0};
};

}  // namespace negotiator
